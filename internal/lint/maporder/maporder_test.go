package maporder_test

import (
	"testing"

	"fortyconsensus/internal/lint/analysistest"
	"fortyconsensus/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a")
}
