// Package maporder implements the map-iteration-order analyzer. Go
// randomises map iteration, so a `range` over a map whose body has
// order-sensitive effects — emitting messages, appending to a slice
// that outlives the loop, writing into ordered state, or early-exiting
// with a captured element — produces a different outcome each run and
// breaks the byte-for-byte golden artifacts.
//
// The analyzer flags such loops at the `for` keyword. The fix is to
// iterate sorted keys (det.SortedKeys / det.SortedKeysFunc, which turn
// the statement into a range over a slice the analyzer ignores); loops
// whose effects are provably commutative — pure counting, any-match
// predicates that trigger a single order-independent action — carry
// //lint:allow maporder <reason> instead.
//
// Effects that do NOT flag a loop, because they are order-insensitive
// by construction: per-key writes and deletes on maps (the ranged map
// or any other), commutative numeric accumulation (x++, x += v),
// scalar/field assignment without early exit (max-tracking), locals
// that die with the iteration, and bare or constant-only early
// returns (existence checks).
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fortyconsensus/internal/lint/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map loops with order-sensitive effects (message emission, appends, ordered-state writes, early-exit captures)",
	Run:  run,
}

// pureBuiltins never make an iteration order observable on their own.
// append and delete are judged in context; panic and print are
// deliberately absent (their payload/order is observable).
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "make": true, "new": true,
	"copy": true, "min": true, "max": true, "delete": true,
	"append": true, "real": true, "imag": true, "complex": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if effects := scan(pass, rs); len(effects) > 0 {
				pass.Reportf(rs.Pos(), "range over map %s is order-sensitive: %s (iterate det.SortedKeys* or annotate //lint:allow maporder <reason>)",
					types.ExprString(rs.X), strings.Join(effects, "; "))
			}
			return true
		})
	}
	return nil, nil
}

// scan walks one range-over-map body and classifies its effects.
func scan(pass *analysis.Pass, rs *ast.RangeStmt) []string {
	var effects []string
	var captures []string // loop-derived writes to outer vars; only an effect with early exit
	earlyExit := false

	// loopLocal: declared by the range clause or inside the body, so it
	// dies with the iteration.
	loopLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
	}
	// tainted: the expression's value depends on which/whose iteration
	// computed it (references a loop-local variable).
	tainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; loopLocal(obj) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, pure
			}
			if id := calleeIdent(n.Fun); id != nil {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					if !pureBuiltins[b.Name()] {
						effects = append(effects, fmt.Sprintf("calls %s", b.Name()))
					}
					return true
				}
			}
			effects = append(effects, fmt.Sprintf("calls %s", types.ExprString(n.Fun)))
		case *ast.SendStmt:
			effects = append(effects, "sends on a channel")
		case *ast.GoStmt:
			effects = append(effects, "spawns a goroutine")
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				classifyWrite(pass, n, i, lhs, loopLocal, tainted, &effects, &captures)
			}
		case *ast.ReturnStmt:
			earlyExit = true
			for _, res := range n.Results {
				if tainted(res) {
					effects = append(effects, fmt.Sprintf("returns loop-dependent value %s", types.ExprString(res)))
					break
				}
			}
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				earlyExit = true
			}
		}
		return true
	})

	if earlyExit && len(captures) > 0 {
		effects = append(effects, fmt.Sprintf("captures %s before an early exit (first match depends on iteration order)",
			strings.Join(captures, ", ")))
	}
	return effects
}

// classifyWrite judges one assignment target inside the loop body.
func classifyWrite(pass *analysis.Pass, as *ast.AssignStmt, i int, lhs ast.Expr,
	loopLocal func(types.Object) bool, tainted func(ast.Expr) bool,
	effects, captures *[]string) {

	// RHS for non-tuple assignments; tuple (ok-form) RHS is judged as a
	// whole via the first expression.
	var rhs ast.Expr
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	} else if len(as.Rhs) == 1 {
		rhs = as.Rhs[0]
	}

	switch l := lhs.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Defs[l]
		if obj == nil {
			obj = pass.TypesInfo.Uses[l]
		}
		if loopLocal(obj) {
			return
		}
		// Appends that grow an outer slice record iteration order in
		// element order, whatever the appended values are.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id := calleeIdent(call.Fun); id != nil {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					*effects = append(*effects, fmt.Sprintf("appends to %s, which outlives the loop", l.Name))
					return
				}
			}
		}
		// Commutative numeric accumulation.
		if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
			as.Tok == token.OR_ASSIGN || as.Tok == token.AND_ASSIGN || as.Tok == token.XOR_ASSIGN {
			if obj != nil {
				if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsNumeric != 0 {
					return
				}
			}
			*effects = append(*effects, fmt.Sprintf("accumulates non-numeric state in %s (op %s is order-sensitive)", l.Name, as.Tok))
			return
		}
		if rhs != nil && tainted(rhs) {
			*captures = append(*captures, l.Name)
		}
	case *ast.IndexExpr:
		base := pass.TypesInfo.TypeOf(l.X)
		if base == nil {
			return
		}
		switch base.Underlying().(type) {
		case *types.Map:
			return // per-key map writes commute across iteration orders
		case *types.Slice, *types.Array:
			if id, ok := rootIdent(l.X); ok && loopLocal(pass.TypesInfo.Uses[id]) {
				return // the slice dies with the iteration
			}
			*effects = append(*effects, fmt.Sprintf("writes ordered state %s", types.ExprString(l)))
		}
	case *ast.SelectorExpr:
		// Field writes: fine on loop-local values (including the map's
		// *T elements — per-key), a capture on outer state.
		if id, ok := rootIdent(l.X); ok {
			obj := pass.TypesInfo.Uses[id]
			if loopLocal(obj) {
				return
			}
		}
		if rhs != nil && tainted(rhs) {
			*captures = append(*captures, types.ExprString(l))
		}
	case *ast.StarExpr:
		if rhs != nil && tainted(rhs) {
			*captures = append(*captures, types.ExprString(l))
		}
	}
}

// calleeIdent unwraps the identifier a call resolves through, if any.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.ParenExpr:
		return calleeIdent(f.X)
	}
	return nil
}

// rootIdent digs to the base identifier of a selector/index chain.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
