// Package a exercises the nodeterm analyzer: hits, non-hits, and
// suppression.
package a

import (
	crand "crypto/rand" // want "crypto/rand is nondeterministic"
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()             // want "time.Now reads the wall clock"
	d := time.Since(t0)          // want "time.Since reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return d
}

// Duration arithmetic and constants stay legal.
func durations() time.Duration { return 5 * time.Second }

func randomness(r *rand.Rand) int {
	n := rand.Intn(10)                            // want "rand.Intn uses the global generator"
	rand.Shuffle(n, func(i, j int) {})            // want "rand.Shuffle uses the global generator"
	return n + r.Intn(10) + int(rand.Int63n(100)) // want "rand.Int63n uses the global generator"
}

// Constructing an explicitly seeded generator is the sanctioned path.
func seeded() *rand.Rand { return rand.New(rand.NewSource(42)) }

func keyMaterial() []byte {
	b := make([]byte, 16)
	_, _ = crand.Read(b) // want "crypto/rand.Read draws real entropy"
	return b
}

// Capturing a forbidden function as a value launders it past a pure
// call-site check; references are flagged like calls.
func laundered() func() time.Time {
	f := time.Now // want "time.Now reads the wall clock"
	return f
}

func env() string {
	return os.Getenv("HOME") // want "os.Getenv reads host environment"
}

func goroutines(ch chan int) int {
	go func() {}()      // want "go statement hands scheduling to the Go runtime"
	ch <- 1             // want "channel send in protocol code"
	v := <-ch           // want "channel receive in protocol code"
	for w := range ch { // want "range over channel in protocol code"
		v += w
	}
	close(ch) // want "close on a channel in protocol code"
	return v
}

func selects() {
	select {} // want "select races goroutines against each other"
}

// Deterministic state machinery stays legal: plain maps, slices, the
// simulated clock as an integer.
type replica struct {
	now     int
	pending map[int]string
}

func (r *replica) tick() { r.now++ }

func suppressedSameLine() {
	_ = time.Now() //lint:allow nodeterm fixture proves same-line suppression is honored
}

func suppressedLineAbove() {
	//lint:allow nodeterm fixture proves line-above suppression is honored
	_ = time.Now()
}
