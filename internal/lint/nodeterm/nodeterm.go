// Package nodeterm implements the determinism-contract analyzer for
// protocol packages: replica logic must be a pure function of the
// simnet clock and the seeded RNG, so every artifact regenerates
// byte-for-byte (the golden suite in internal/experiments). The
// analyzer forbids, anywhere in a protocol package:
//
//   - wall-clock reads and timers (time.Now, time.Since, time.Sleep,
//     timer/ticker constructors) — simulated time is an integer tick
//     handed in by the runner;
//   - the global math/rand generator (rand.Intn and friends) — a
//     seeded *rand.Rand threaded through the harness is fine,
//     rand.New/rand.NewSource are the allowed constructors;
//   - crypto/rand entirely — key material is derived from seeds;
//   - environment reads (os.Getenv etc.) — configuration flows through
//     Config structs so a run is reproducible from its parameters;
//   - go statements and every channel operation (send, receive,
//     select, close, range-over-channel) — scheduling order must come
//     from the deterministic event loop, never the Go scheduler.
//
// Provably harmless exceptions carry //lint:allow nodeterm <reason>.
package nodeterm

import (
	"go/ast"
	"go/types"

	"fortyconsensus/internal/lint/analysis"
)

// Analyzer is the nodeterm check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock, global randomness, env reads, goroutines and channels in protocol packages",
	Run:  run,
}

// WallClock are the time package functions that read or schedule on
// real time. Duration arithmetic and constants stay legal. The tables
// are exported because determtaint propagates the same source set
// transitively.
var WallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// GlobalRand are the math/rand package-level functions driven by the
// shared global Source. Constructors for an explicitly seeded
// generator (New, NewSource, NewZipf) are the sanctioned alternative.
var GlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true, "N": true, "IntN": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// EnvReads are the os functions that smuggle host state into a run.
var EnvReads = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// Forbidden classifies one stdlib function against the contract,
// returning a short description of the nondeterminism it introduces
// (empty when the function is fine). Methods are never forbidden —
// a seeded *rand.Rand is the sanctioned randomness source.
func Forbidden(fn *types.Func) string {
	if fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if WallClock[fn.Name()] {
			return "time." + fn.Name() + " (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		if GlobalRand[fn.Name()] {
			return "rand." + fn.Name() + " (global randomness)"
		}
	case "os":
		if EnvReads[fn.Name()] {
			return "os." + fn.Name() + " (host environment)"
		}
	case "crypto/rand":
		return "crypto/rand." + fn.Name() + " (entropy)"
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"crypto/rand"` {
				pass.Reportf(imp.Pos(), "crypto/rand is nondeterministic; derive key material from the run seed instead")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectorExpr:
				checkRef(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement hands scheduling to the Go runtime; protocol steps must run on the deterministic event loop")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in protocol code; message flow must go through the replica's outbound queue")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(), "channel receive in protocol code; inputs must arrive via Step/Tick from the event loop")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select races goroutines against each other; protocol code must stay single-threaded and deterministic")
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in protocol code; inputs must arrive via Step/Tick from the event loop")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkCall flags close(ch); every selector-based forbidden function
// is handled by checkRef, whether called or referenced as a value.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			pass.Reportf(call.Pos(), "close on a channel in protocol code")
		}
	}
}

// checkRef flags any use of a forbidden standard-library function —
// called directly, or captured as a function value (`f := time.Now`)
// that would launder the read past a call-site check.
func checkRef(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if WallClock[fn.Name()] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; protocol code must use the simulated tick passed in by the runner", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if GlobalRand[fn.Name()] {
			pass.Reportf(sel.Pos(), "rand.%s uses the global generator; thread a seeded *rand.Rand through the config instead", fn.Name())
		}
	case "os":
		if EnvReads[fn.Name()] {
			pass.Reportf(sel.Pos(), "os.%s reads host environment; configuration must flow through Config so runs are reproducible", fn.Name())
		}
	case "crypto/rand":
		pass.Reportf(sel.Pos(), "crypto/rand.%s draws real entropy; derive key material from the run seed instead", fn.Name())
	}
}
