package nodeterm_test

import (
	"testing"

	"fortyconsensus/internal/lint/analysistest"
	"fortyconsensus/internal/lint/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterm.Analyzer, "a")
}
