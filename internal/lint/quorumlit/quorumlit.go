// Package quorumlit implements the hand-rolled-quorum-arithmetic
// analyzer. Threshold math is where consensus safety lives — a single
// off-by-one (2f instead of 2f+1) silently voids quorum intersection —
// so the repo concentrates every formula in internal/quorum, where the
// property-based tests prove intersection once for all protocols. This
// analyzer flags the literal forms the paper's fact boxes use when they
// appear anywhere else:
//
//	n/2 + 1          majority              → quorum.Majority
//	2f + 1           majority size / BFT   → quorum.MajorityFor,
//	                 threshold               quorum.Byzantine.Threshold
//	3f + 1           BFT cluster size      → quorum.Byzantine.Size
//	3m + 2c + 1      hybrid cluster size   → quorum.Hybrid.Size
//	2m + c + 1       hybrid threshold      → quorum.Hybrid.Threshold
//
// The matcher: a top-level sum with exactly one literal 1, at least one
// term that multiplies by constant 2 or 3 (or divides by 2), and no
// other constant terms. Timeout arithmetic like now + 2*reqTimeout has
// no +1 term and never matches.
package quorumlit

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"fortyconsensus/internal/lint/analysis"
)

// Analyzer is the quorumlit check.
var Analyzer = &analysis.Analyzer{
	Name: "quorumlit",
	Doc:  "flag hand-rolled quorum arithmetic (n/2+1, 2f+1, 3f+1, 3m+2c+1, …) outside internal/quorum",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.ADD {
				return true
			}
			if match(pass, be) {
				pass.Reportf(be.Pos(), "hand-rolled quorum arithmetic %s; route thresholds through internal/quorum so intersection stays proved in one place",
					types.ExprString(be))
				return false // don't re-match subexpressions
			}
			return true
		})
	}
	return nil, nil
}

// match reports whether the flattened sum looks like quorum arithmetic.
func match(pass *analysis.Pass, sum *ast.BinaryExpr) bool {
	var terms []ast.Expr
	flattenAdd(sum, &terms)

	ones, scaled, bare := 0, 0, 0
	for _, t := range terms {
		switch {
		case isConst(pass, t, 1):
			ones++
		case isScaledTerm(pass, t):
			scaled++
		case isConstExpr(pass, t):
			return false // other constants: not one of the known forms
		default:
			bare++
		}
	}
	_ = bare // bare non-constant terms (the c in 2m+c+1) are fine
	return ones == 1 && scaled >= 1
}

// flattenAdd collects the terms of a left-leaning + chain.
func flattenAdd(e ast.Expr, out *[]ast.Expr) {
	if be, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && be.Op == token.ADD {
		flattenAdd(be.X, out)
		flattenAdd(be.Y, out)
		return
	}
	*out = append(*out, ast.Unparen(e))
}

// isScaledTerm matches 2*x, 3*x, x*2, x*3 and x/2 for non-constant x.
func isScaledTerm(pass *analysis.Pass, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.MUL:
		return (isConst(pass, be.X, 2) || isConst(pass, be.X, 3)) && !isConstExpr(pass, be.Y) ||
			(isConst(pass, be.Y, 2) || isConst(pass, be.Y, 3)) && !isConstExpr(pass, be.X)
	case token.QUO:
		return isConst(pass, be.Y, 2) && !isConstExpr(pass, be.X)
	}
	return false
}

// isConst reports whether e is an integer constant equal to want.
func isConst(pass *analysis.Pass, e ast.Expr, want int64) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == want
}

// isConstExpr reports whether e is any compile-time constant.
func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}
