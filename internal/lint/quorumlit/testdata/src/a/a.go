// Package a exercises the quorumlit analyzer: the paper's literal
// quorum forms (hits), innocent arithmetic (non-hits), and suppression.
package a

func majoritySize(f int) int    { return 2*f + 1 }       // want "hand-rolled quorum arithmetic 2 \\* f \\+ 1"
func bftSize(f int) int         { return 3*f + 1 }       // want "hand-rolled quorum arithmetic"
func majority(n int) int        { return n/2 + 1 }       // want "hand-rolled quorum arithmetic"
func hybridSize(m, c int) int   { return 3*m + 2*c + 1 } // want "hand-rolled quorum arithmetic"
func hybridQuorum(m, c int) int { return 2*m + c + 1 }   // want "hand-rolled quorum arithmetic"
func reversed(f int) int        { return f*2 + 1 }       // want "hand-rolled quorum arithmetic"

type cfg struct{ F int }

func fieldForm(c cfg) int { return 2*c.F + 1 } // want "hand-rolled quorum arithmetic"

// Non-hits.
func fPlusOne(f int) int      { return f + 1 }
func timeout(now, rt int) int { return now + 2*rt }
func double(x int) int        { return 2 * x }
func constSum() int           { return 2*3 + 1 } // all-constant: not quorum math
func noOne(f int) int         { return 2*f + 2 }
func deadline(v, rt int) int  { return v + 2*rt + 4 }

// Suppressed.
func annotated(f int) int {
	//lint:allow quorumlit fixture proves suppression is honored
	return 2*f + 1
}
