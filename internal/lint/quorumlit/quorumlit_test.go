package quorumlit_test

import (
	"testing"

	"fortyconsensus/internal/lint/analysistest"
	"fortyconsensus/internal/lint/quorumlit"
)

func TestQuorumlit(t *testing.T) {
	analysistest.Run(t, "testdata", quorumlit.Analyzer, "a")
}
