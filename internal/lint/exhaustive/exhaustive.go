// Package exhaustive enforces that protocol code switching over a
// message-kind, phase, or state enum handles every declared constant
// of that enum. Howard & Mortier's Paxos/Raft comparison locates most
// real divergence bugs in under-specified handler behavior, and the
// cheapest way to under-specify a handler in Go is a switch that
// silently falls through for a message kind added after the switch was
// written: the message is dropped, no invariant trips locally, and the
// divergence surfaces replicas later as a liveness stall or a golden
// mismatch.
//
// A switch is in scope when its tag's type is a named module-internal
// type with at least two declared package-level constants (the enum
// shape every MsgKind/phase/state in this repo uses). Coverage is by
// constant value; a default clause does not count as coverage —
// `default:` is exactly where a new kind disappears silently, so a
// deliberately partial switch must say why with //lint:allow
// exhaustive <reason> (or handle the remaining kinds explicitly, even
// if only to panic).
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"fortyconsensus/internal/lint/analysis"
)

// Analyzer is the exhaustive check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over message-kind/phase/state enums to cover every declared constant",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	t := pass.TypesInfo.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !moduleInternal(pass, obj.Pkg()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	consts := enumConstants(obj.Pkg(), named)
	if len(consts) < 2 {
		return // not an enum, just a named scalar
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	label := obj.Name()
	if obj.Pkg() != pass.Pkg {
		label = obj.Pkg().Name() + "." + label
	}
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s; handle every kind explicitly (a default drops new kinds silently) or annotate //lint:allow exhaustive <reason>",
		label, strings.Join(missing, ", "))
}

// moduleInternal reports whether pkg is part of the analyzed module:
// loaded in the whole-program view when one exists, else the package
// under analysis itself.
func moduleInternal(pass *analysis.Pass, pkg *types.Package) bool {
	if pkg == pass.Pkg {
		return true
	}
	return pass.Prog != nil && pass.Prog.Package(pkg.Path()) != nil
}

// enumConstants returns the package-level constants declared with
// exactly type named, in declaration order.
func enumConstants(pkg *types.Package, named *types.Named) []*types.Const {
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	// Declaration order matches the iota block, which is the order a
	// reader expects missing kinds listed in.
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
