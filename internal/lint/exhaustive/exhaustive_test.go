package exhaustive_test

import (
	"testing"

	"fortyconsensus/internal/lint/analysistest"
	"fortyconsensus/internal/lint/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", exhaustive.Analyzer, "exproto")
}
