// Package exenum declares a cross-package enum for the exhaustive
// fixtures.
package exenum

// Phase is a protocol phase enum declared outside the switching
// package.
type Phase uint8

// The declared phases.
const (
	Prepare Phase = iota + 1
	Commit
	Abort
)
