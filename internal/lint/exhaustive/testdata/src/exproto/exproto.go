// Package exproto exercises the exhaustive analyzer: full coverage,
// missing arms with and without default, cross-package enums, and
// out-of-scope switches.
package exproto

import (
	"go/token"

	"fix/exenum"
)

// MsgKind is the in-package message enum.
type MsgKind uint8

// The declared kinds.
const (
	MsgPrepare MsgKind = iota + 1
	MsgPromise
	MsgAccept
	MsgAccepted
)

// lone has a single constant, so it is a named scalar, not an enum.
type lone uint8

const only lone = 1

// Full covers everything: no finding.
func Full(k MsgKind) string {
	switch k {
	case MsgPrepare:
		return "prepare"
	case MsgPromise:
		return "promise"
	case MsgAccept:
		return "accept"
	case MsgAccepted:
		return "accepted"
	}
	return "unknown"
}

// Partial drops two kinds on the floor.
func Partial(k MsgKind) string {
	switch k { // want "switch over MsgKind is not exhaustive: missing MsgAccept, MsgAccepted"
	case MsgPrepare:
		return "prepare"
	case MsgPromise:
		return "promise"
	}
	return ""
}

// DefaultDoesNotCover: the default clause is exactly where a new kind
// disappears silently.
func DefaultDoesNotCover(k MsgKind) string {
	switch k { // want "switch over MsgKind is not exhaustive: missing MsgAccepted"
	case MsgPrepare, MsgPromise, MsgAccept:
		return "known"
	default:
		return "dropped"
	}
}

// CrossPackage switches over a helper package's enum.
func CrossPackage(p exenum.Phase) bool {
	switch p { // want "switch over exenum.Phase is not exhaustive: missing Abort"
	case exenum.Prepare, exenum.Commit:
		return true
	}
	return false
}

// StdlibEnumIgnored: only module-internal enums are in scope.
func StdlibEnumIgnored(t token.Token) bool {
	switch t {
	case token.ADD:
		return true
	}
	return false
}

// SingleConstantIgnored: one constant is a sentinel, not an enum.
func SingleConstantIgnored(l lone) bool {
	switch l {
	case only:
		return true
	}
	return false
}

// Untagged switches are ordinary conditionals.
func Untagged(k MsgKind) string {
	switch {
	case k == MsgPrepare:
		return "prepare"
	}
	return ""
}

// Suppressed shows the house directive applies.
func Suppressed(k MsgKind) bool {
	//lint:allow exhaustive only the two proposer kinds matter here; every other kind is the acceptor's
	switch k {
	case MsgPrepare, MsgAccept:
		return true
	}
	return false
}
