// Package valueown enforces the types.Value ownership discipline that
// lets the protocol hot paths share payload bytes instead of cloning
// them on every hop (DESIGN.md, "Parallel campaigns & allocation
// discipline"). The contract has two halves, and this analyzer checks
// the two aliasing-bug shapes that violate them:
//
//   - mutate-after-publish: a Value is immutable once it has been
//     handed over — stored into a message or log-entry struct, placed
//     in a composite literal, appended to an outliving slice, or
//     passed to another function. Writing through the slice after that
//     point (v[i] = x, copy(v, …), or regrowing it with append, which
//     may write the shared backing array in place) corrupts every
//     holder of the same bytes, including duplicate deliveries of the
//     same simulated message.
//
//   - retain-borrowed-slice: batch slices arriving in a handler's
//     message (AppendEntries batches, catch-up Commit batches) are
//     loaned for the duration of the call. Storing the slice itself —
//     into a receiver field, a package variable, an outgoing composite
//     literal, or a slice-of-slices — retains an alias past the
//     handler return; the sender and duplicate deliveries share the
//     backing array, so a later in-place write becomes action at a
//     distance. Copying the elements (append(dst, batch...) or an
//     explicit element loop) is the sanctioned pattern, and writing
//     a borrowed element in place is flagged for the same reason.
//
// The analysis is per-function and syntactic in flow (statements are
// judged in source order), which is exactly the granularity the PR 7
// manual audit used; //lint:allow valueown <reason> waives a site with
// a written argument.
package valueown

import (
	"go/ast"
	"go/token"
	"go/types"

	"fortyconsensus/internal/lint/analysis"
)

// Analyzer is the valueown check.
var Analyzer = &analysis.Analyzer{
	Name: "valueown",
	Doc:  "enforce types.Value ownership: no mutation after publish, no retention of borrowed batch slices past handler return",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			newFnCheck(pass, fd).walk(fd.Body)
		}
	}
	return nil, nil
}

// isValue reports whether t is the shared types.Value named type (or
// the fixture stand-in: any type named Value in a package named
// "types").
func isValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Value" && obj.Pkg() != nil && obj.Pkg().Name() == "types"
}

// isBatchSlice reports whether t is a loanable batch slice: a slice of
// types.Value, or a slice of named structs carrying a types.Value
// field (log entries, requests, wire messages).
func isBatchSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem()
	if isValue(elem) {
		return true
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isValue(ft) || isBatchSlice(ft) {
			return true
		}
	}
	return false
}

// fnCheck carries the per-function ownership state.
type fnCheck struct {
	pass *analysis.Pass
	info *types.Info

	// published marks Value-typed locals that have been handed over.
	published map[types.Object]bool
	// borrowed marks slice-typed objects loaned to this function
	// (batch params and locals aliasing them).
	borrowed map[types.Object]bool
	// borrowedField marks struct params (message values) whose batch
	// slice fields are loaned: param object -> field name -> true.
	borrowedField map[types.Object]map[string]bool
}

func newFnCheck(pass *analysis.Pass, fd *ast.FuncDecl) *fnCheck {
	c := &fnCheck{
		pass:          pass,
		info:          pass.TypesInfo,
		published:     make(map[types.Object]bool),
		borrowed:      make(map[types.Object]bool),
		borrowedField: make(map[types.Object]map[string]bool),
	}
	if fd.Type.Params == nil {
		return c
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			if isBatchSlice(t) {
				c.borrowed[obj] = true
				continue
			}
			// A message struct param loans its batch slice fields.
			// Messages travel by value in this codebase; a pointer
			// struct param (a node being restored, a builder) is handed
			// over for mutation, so its fields are owned, not loaned.
			if _, ok := t.Underlying().(*types.Pointer); ok {
				continue
			}
			if s, ok := t.Underlying().(*types.Struct); ok {
				for i := 0; i < s.NumFields(); i++ {
					f := s.Field(i)
					if isBatchSlice(f.Type()) {
						if c.borrowedField[obj] == nil {
							c.borrowedField[obj] = make(map[string]bool)
						}
						c.borrowedField[obj][f.Name()] = true
					}
				}
			}
		}
	}
	return c
}

// walk judges the body in source order.
func (c *fnCheck) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.IncDecStmt:
			if obj := c.valueIndexTarget(n.X); obj != nil && c.published[obj] {
				c.pass.Reportf(n.Pos(), "types.Value %s is mutated after being published; values are immutable once handed over — Clone at the boundary instead", obj.Name())
			}
		}
		return true
	})
}

// assign handles publication, mutation, aliasing and retention through
// assignment statements.
func (c *fnCheck) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		lhs = ast.Unparen(lhs)

		// Mutation: writing an element of a published Value.
		if obj := c.valueIndexTarget(lhs); obj != nil && c.published[obj] {
			c.pass.Reportf(as.Pos(), "types.Value %s is mutated after being published; values are immutable once handed over — Clone at the boundary instead", obj.Name())
		}
		// Mutation: writing an element of a borrowed batch slice.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if root := c.borrowedExpr(idx.X); root != "" {
				c.pass.Reportf(as.Pos(), "borrowed batch slice %s is written in place; the sender and duplicate deliveries share its backing array", root)
			}
			// Publication: v stored into an element slot.
			c.publishIdents(rhs)
		}

		switch l := lhs.(type) {
		case *ast.Ident:
			obj := c.info.Defs[l]
			if obj == nil {
				obj = c.info.Uses[l]
			}
			if obj == nil || rhs == nil {
				continue
			}
			if isValue(obj.Type()) {
				// Reassignment makes the name own a different value;
				// publication state restarts unless the RHS itself is a
				// published/borrowed alias.
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					src := c.info.Uses[id]
					c.published[obj] = src != nil && c.published[src]
				} else if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.isAppendOf(call, obj) {
					// v = append(v, ...) keeps identity; judged in call().
				} else {
					c.published[obj] = false
				}
			}
			// Aliasing a borrowed slice keeps it borrowed under the new
			// name.
			if root := c.borrowedExpr(rhs); root != "" && isBatchSlice(obj.Type()) {
				c.borrowed[obj] = true
			}
		case *ast.SelectorExpr:
			// Writing a field of a borrowed element (m.Entries[0].Val
			// = x) mutates the shared backing array in place.
			if idx, ok := ast.Unparen(l.X).(*ast.IndexExpr); ok {
				if root := c.borrowedExpr(idx.X); root != "" {
					c.pass.Reportf(as.Pos(), "borrowed batch slice %s is written in place; the sender and duplicate deliveries share its backing array", root)
				}
			}
			// Storing into a field: publication for Values, retention
			// for borrowed slices.
			c.publishIdents(rhs)
			if root := c.borrowedExpr(rhs); root != "" {
				c.pass.Reportf(as.Pos(), "borrowed batch slice %s is retained past the handler return (stored into %s); copy the elements instead",
					root, types.ExprString(l))
			}
		case *ast.StarExpr:
			c.publishIdents(rhs)
		}
	}
}

// call handles append/copy mutation of published values, publication
// through call arguments, and retention via slice-of-slices appends.
func (c *fnCheck) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) == 0 {
					return
				}
				if obj := c.valueObj(call.Args[0]); obj != nil && c.published[obj] {
					c.pass.Reportf(call.Pos(), "append to published types.Value %s may write the shared backing array in place; Clone before growing", obj.Name())
				}
				// Retaining the borrowed slice as one element of a
				// slice-of-slices; spread appends copy elements and are
				// fine.
				if call.Ellipsis == token.NoPos {
					for _, a := range call.Args[1:] {
						if root := c.borrowedExpr(a); root != "" {
							c.pass.Reportf(call.Pos(), "borrowed batch slice %s is retained past the handler return (appended as an element); copy the elements instead", root)
						}
						c.publishIdents(a)
					}
				}
			case "copy":
				if len(call.Args) > 0 {
					if obj := c.valueObj(call.Args[0]); obj != nil && c.published[obj] {
						c.pass.Reportf(call.Pos(), "copy into published types.Value %s overwrites shared bytes; values are immutable once handed over", obj.Name())
					}
				}
			}
			return
		}
	}
	// An ordinary call takes ownership of any Value argument.
	for _, a := range call.Args {
		c.publishIdents(a)
	}
}

// composite marks Values placed directly into composite literals as
// published (the literal is a message, entry, or batch being built),
// and flags borrowed slices stored wholesale into one.
func (c *fnCheck) composite(lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		el = ast.Unparen(el)
		if obj := c.valueObj(el); obj != nil {
			c.published[obj] = true
		}
		if root := c.borrowedExpr(el); root != "" {
			c.pass.Reportf(el.Pos(), "borrowed batch slice %s is stored into a composite literal that may outlive the handler; copy the elements instead", root)
		}
	}
}

// publishIdents marks every directly-appearing Value local in e as
// published. Receivers of method calls (v.Clone()) do not publish.
func (c *fnCheck) publishIdents(e ast.Expr) {
	if e == nil {
		return
	}
	if obj := c.valueObj(e); obj != nil {
		c.published[obj] = true
	}
}

// valueObj resolves e (after unwrapping parens and slicing) to a
// tracked Value-typed local object, or nil.
func (c *fnCheck) valueObj(e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.info.Uses[id]
	if obj == nil {
		obj = c.info.Defs[id]
	}
	if obj == nil || !isValue(obj.Type()) {
		return nil
	}
	return obj
}

// valueIndexTarget returns the Value object when e is an index into a
// tracked Value (v[i]), else nil.
func (c *fnCheck) valueIndexTarget(e ast.Expr) types.Object {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	return c.valueObj(idx.X)
}

// borrowedExpr reports whether e denotes a borrowed batch slice (a
// loaned param, a local alias, a message param's batch field, or a
// reslice of any of those), returning a printable name or "".
func (c *fnCheck) borrowedExpr(e ast.Expr) string {
	if e == nil {
		return ""
	}
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := c.info.Uses[x]; obj != nil && c.borrowed[obj] {
			return x.Name
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if obj := c.info.Uses[id]; obj != nil && c.borrowedField[obj][x.Sel.Name] {
				return id.Name + "." + x.Sel.Name
			}
		}
	}
	return ""
}

// isAppendOf reports whether call is append(obj, ...).
func (c *fnCheck) isAppendOf(call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "append" || len(call.Args) == 0 {
		return false
	}
	return c.valueObj(call.Args[0]) == obj
}
