// Package types is the fixture stand-in for the module's shared
// internal/types package; valueown recognizes the Value named type by
// name and package name so fixtures stay module-independent.
package types

// Value mirrors fortyconsensus/internal/types.Value.
type Value []byte

// Clone returns an independent copy of v.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	c := make(Value, len(v))
	copy(c, v)
	return c
}
