// Package voproto reproduces the aliasing bug shapes the PR 7 manual
// audit guarded against when defensive clones were dropped from the
// raft/multipaxos/pbft/smr/commit hot paths.
package voproto

import "fix/types"

// Entry is a replicated log entry sharing its Value.
type Entry struct {
	Term uint64
	Val  types.Value
}

// Message is a wire message carrying a batch of entries.
type Message struct {
	Kind    uint8
	Val     types.Value
	Entries []Entry
}

// Node is a protocol replica.
type Node struct {
	log   []Entry
	held  []Entry
	heldV []types.Value
	out   []Message
}

// --- mutate-after-publish -------------------------------------------------

// MutateAfterSend is the canonical bug: the value is already inside an
// outbound message sharing the same backing array.
func (n *Node) MutateAfterSend(v types.Value) {
	n.out = append(n.out, Message{Kind: 1, Val: v})
	v[0] = 'x' // want "types.Value v is mutated after being published"
}

// CopyAfterLogPublish overwrites bytes a log entry already shares.
func (n *Node) CopyAfterLogPublish(v, src types.Value) {
	n.log = append(n.log, Entry{Term: 1, Val: v})
	copy(v, src) // want "copy into published types.Value v overwrites shared bytes"
}

// GrowAfterPublish may write the shared array in place when capacity
// allows.
func (n *Node) GrowAfterPublish(v types.Value) {
	n.out = append(n.out, Message{Val: v})
	v = append(v, 0) // want "append to published types.Value v may write the shared backing array"
	_ = v
}

// MutateAfterHandoff: passing a value to another function hands over
// ownership too.
func (n *Node) MutateAfterHandoff(v types.Value) {
	n.stash(v)
	v[0]++ // want "types.Value v is mutated after being published"
}

func (n *Node) stash(v types.Value) { n.heldV = append(n.heldV, v) }

// BuildThenPublish is the legal order: mutate while owned, publish,
// stop writing.
func (n *Node) BuildThenPublish() {
	v := make(types.Value, 8)
	v[0] = 'a' // owned: fine
	copy(v[1:], "bcdefgh")
	n.out = append(n.out, Message{Val: v})
}

// ReassignRestartsOwnership: a fresh value under the same name is
// owned again.
func (n *Node) ReassignRestartsOwnership(v types.Value) {
	n.out = append(n.out, Message{Val: v})
	v = make(types.Value, 4)
	v[0] = 1 // fresh value: fine
	_ = v
}

// CloneBreaksAliasing is the sanctioned escape hatch.
func (n *Node) CloneBreaksAliasing(v types.Value) {
	n.out = append(n.out, Message{Val: v})
	w := v.Clone()
	w[0] = 'y' // independent copy: fine
}

// AliasStaysPublished: a plain rename still points at shared bytes.
func (n *Node) AliasStaysPublished(v types.Value) {
	n.out = append(n.out, Message{Val: v})
	w := v
	w[0] = 'z' // want "types.Value w is mutated after being published"
}

// --- retain-borrowed-slice ------------------------------------------------

// RetainBatchParam stores the loaned slice itself.
func (n *Node) RetainBatchParam(entries []Entry) {
	n.held = entries // want "borrowed batch slice entries is retained past the handler return"
}

// RetainMessageField retains a reslice of the message's batch.
func (n *Node) RetainMessageField(m Message) {
	n.held = m.Entries[1:] // want "borrowed batch slice m.Entries is retained past the handler return"
}

// RetainViaAlias launders the loan through a local name.
func (n *Node) RetainViaAlias(m Message) {
	es := m.Entries
	n.held = es // want "borrowed batch slice es is retained past the handler return"
}

// ForwardBorrowed ships the loaned array inside a new message.
func (n *Node) ForwardBorrowed(m Message) {
	n.out = append(n.out, Message{Entries: m.Entries}) // want "borrowed batch slice m.Entries is stored into a composite literal"
}

// WriteBorrowedElement mutates the shared backing array in place.
func (n *Node) WriteBorrowedElement(m Message) {
	m.Entries[0].Val = nil // want "borrowed batch slice m.Entries is written in place"
}

// OverwriteBorrowedSlot replaces a whole loaned element.
func (n *Node) OverwriteBorrowedSlot(m Message, e Entry) {
	m.Entries[0] = e // want "borrowed batch slice m.Entries is written in place"
}

// CopyElementsIsFine is the sanctioned pattern: spread appends and
// element loops copy headers into receiver-owned arrays.
func (n *Node) CopyElementsIsFine(m Message) {
	n.log = append(n.log, m.Entries...)
	for _, e := range m.Entries {
		n.held = append(n.held, e)
	}
}

// RestoreOwnsTarget: a pointer struct param is a mutation target the
// caller hands over (a node being restored, a builder), not a loaned
// message, so re-slicing its batch fields is the param's whole purpose.
func RestoreOwnsTarget(n *Node, keep int) {
	n.log = n.log[:keep]
}

// SuppressedRetention shows the house directive applies.
func (n *Node) SuppressedRetention(entries []Entry) {
	//lint:allow valueown fixture proves a reasoned suppression is honored
	n.held = entries
}
