package valueown_test

import (
	"testing"

	"fortyconsensus/internal/lint/analysistest"
	"fortyconsensus/internal/lint/valueown"
)

func TestValueown(t *testing.T) {
	analysistest.Run(t, "testdata", valueown.Analyzer, "voproto")
}
