package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"fortyconsensus/internal/lint/analysis"
)

// retAnalyzer flags every return statement, giving the driver test a
// deterministic stream of diagnostics to suppress.
var retAnalyzer = &analysis.Analyzer{
	Name: "retstmt",
	Doc:  "flag every return statement (driver test fixture)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestDirectiveValidationAndSuppression(t *testing.T) {
	loader := analysis.NewLoader("", "")
	pkg, err := loader.LoadDir("testdata/src/bad", "bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, retAnalyzer)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{
		"names no check",    // //lint:allow with nothing after it
		"carries no reason", // //lint:allow somecheck
		"return statement",  // Uncovered's return survives
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics %q, want %d", len(diags), got, len(want))
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %q", w, got)
		}
	}
	// The suppressed return must be Covered's, i.e. the surviving
	// return diagnostic sits in Uncovered (line 18).
	for _, d := range diags {
		if strings.Contains(d.Message, "return statement") {
			if line := pkg.Fset.Position(d.Pos).Line; line != 18 {
				t.Errorf("surviving return diagnostic at line %d, want 18 (Uncovered)", line)
			}
		}
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	loader := analysis.NewLoader("", "")
	pkg, err := loader.LoadDir("testdata/src/stale", "stale")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, retAnalyzer)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		var got []string
		for _, d := range diags {
			got = append(got, d.Message)
		}
		t.Fatalf("got %d diagnostics %q, want exactly the stale-directive finding", len(diags), got)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "suppresses nothing") || d.Category != "directive" {
		t.Errorf("diagnostic = %q [%s], want a directive finding about suppressing nothing", d.Message, d.Category)
	}
	if line := pkg.Fset.Position(d.Pos).Line; line != 5 {
		t.Errorf("stale directive reported at line %d, want 5", line)
	}
	// A check that did not run gets the benefit of the doubt: running
	// no analyzers must report nothing, used or not.
	diags, err = analysis.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("with no analyzers run, got %d diagnostics, want 0", len(diags))
	}
}
