package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory its sources were read from.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader parses and type-checks packages without the go/packages
// machinery: module-internal imports resolve against the module tree on
// disk, everything else falls back to the standard library's
// from-source importer, so loading works offline and without build
// artifacts. Test files (_test.go) are excluded — the determinism
// contract governs production protocol code.
//
// Every module package is loaded exactly once and cached, whether it
// is a lint target or a dependency, so all packages in one Loader
// agree on type identity.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet
	// ModulePath/ModuleDir map module-internal import paths to
	// directories; empty ModulePath disables module resolution (used
	// by analyzer fixtures, which import only the standard library).
	ModulePath string
	ModuleDir  string

	std   types.Importer
	cache map[string]*Package
}

// NewLoader returns a loader for the module rooted at moduleDir.
func NewLoader(modulePath, moduleDir string) *Loader {
	// The source importer type-checks the standard library from source
	// through build.Default. With cgo enabled it would try to run the
	// cgo tool on packages like net; the pure-Go variants type-check
	// identically and keep the loader offline and toolchain-free.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
	}
}

// LoadDir parses and type-checks the single package in dir, recording
// it under importPath, with full type information for analysis.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importerFunc(l.importPath)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg := &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.cache[importPath] = pkg
	return pkg, nil
}

// importPath resolves one import for the type checker: module-internal
// paths load (and cache) from the module tree, the rest go to the
// standard-library source importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		dir := filepath.Join(l.ModuleDir, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses every non-test .go file in dir, in name order so
// positions (and therefore diagnostic order) are stable.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
