package analysis_test

import (
	"go/types"
	"strings"
	"testing"

	"fortyconsensus/internal/lint/analysis"
)

// loadProgram loads the named fixture packages under testdata/src as
// module "fix" and builds the whole-program view.
func loadProgram(t *testing.T, pkgs ...string) (*analysis.Program, map[string]*analysis.Package) {
	t.Helper()
	loader := analysis.NewLoader("fix", "testdata/src")
	byName := make(map[string]*analysis.Package)
	for _, name := range pkgs {
		pkg, err := loader.LoadDir("testdata/src/"+name, "fix/"+name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		byName[name] = pkg
	}
	return analysis.NewProgram(loader), byName
}

// lookupFunc finds a declared function or method by qualified name
// ("Run", "Machine.Step") in pkg.
func lookupFunc(t *testing.T, prog *analysis.Program, pkg *analysis.Package, name string) *analysis.FuncNode {
	t.Helper()
	recv, method, isMethod := strings.Cut(name, ".")
	scope := pkg.Types.Scope()
	var fn *types.Func
	if !isMethod {
		fn, _ = scope.Lookup(name).(*types.Func)
	} else {
		tn, _ := scope.Lookup(recv).(*types.TypeName)
		if tn == nil {
			t.Fatalf("no type %s in %s", recv, pkg.Path)
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, method)
		fn, _ = obj.(*types.Func)
	}
	if fn == nil {
		t.Fatalf("no function %s in %s", name, pkg.Path)
	}
	node := prog.Func(fn)
	if node == nil {
		t.Fatalf("no call-graph node for %s", name)
	}
	return node
}

func TestCallGraphStaticCrossPackage(t *testing.T) {
	prog, pkgs := loadProgram(t, "cgmain", "cghelp")
	run := lookupFunc(t, prog, pkgs["cgmain"], "Run")

	var toStamp *analysis.Call
	for i, c := range run.Calls {
		if c.Callee.Name() == "Stamp" {
			toStamp = &run.Calls[i]
		}
	}
	if toStamp == nil {
		t.Fatalf("Run has no edge to cghelp.Stamp; edges: %v", edgeNames(run))
	}
	if toStamp.Kind != analysis.CallStatic {
		t.Errorf("edge Run->Stamp has kind %d, want CallStatic", toStamp.Kind)
	}
	// The chain continues inside the helper package: Stamp -> clock ->
	// (stdlib leaf time.Now, not a node).
	stamp := lookupFunc(t, prog, pkgs["cghelp"], "Stamp")
	if len(stamp.Calls) == 0 || stamp.Calls[0].Callee.Name() != "clock" {
		t.Fatalf("Stamp edges = %v, want [clock ...]", edgeNames(stamp))
	}
	clock := prog.Func(stamp.Calls[0].Callee)
	if clock == nil {
		t.Fatal("no node for cghelp.clock")
	}
	foundNow := false
	for _, c := range clock.Calls {
		if c.Callee.Name() == "Now" && c.Callee.Pkg() != nil && c.Callee.Pkg().Path() == "time" {
			foundNow = true
		}
	}
	if !foundNow {
		t.Errorf("clock edges = %v, want a call edge to time.Now", edgeNames(clock))
	}
}

func TestCallGraphMethodValueReference(t *testing.T) {
	prog, pkgs := loadProgram(t, "cgmain", "cghelp")
	run := lookupFunc(t, prog, pkgs["cgmain"], "Run")
	for _, c := range run.Calls {
		if c.Callee.Name() == "helper" {
			if c.Kind != analysis.CallRef {
				t.Errorf("edge Run->node.helper has kind %d, want CallRef", c.Kind)
			}
			return
		}
	}
	t.Errorf("Run has no edge to the method value node.helper; edges: %v", edgeNames(run))
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog, pkgs := loadProgram(t, "cgmain", "cghelp")
	run := lookupFunc(t, prog, pkgs["cgmain"], "Run")
	var dyn *analysis.Call
	for i, c := range run.Calls {
		if c.Kind == analysis.CallDynamic {
			dyn = &run.Calls[i]
		}
	}
	if dyn == nil {
		t.Fatalf("Run has no dynamic edge; edges: %v", edgeNames(run))
	}
	impls := prog.Impls(dyn.Callee)
	if len(impls) != 1 || impls[0].Name() != "Step" {
		names := make([]string, len(impls))
		for i, f := range impls {
			names[i] = f.FullName()
		}
		t.Fatalf("interface method %s resolves to %v, want exactly Machine.Step", dyn.Callee.FullName(), names)
	}
	if prog.Func(impls[0]) == nil {
		t.Error("resolved concrete method has no call-graph node")
	}
}

func edgeNames(n *analysis.FuncNode) []string {
	var out []string
	for _, c := range n.Calls {
		out = append(out, c.Callee.Name())
	}
	return out
}
