// Package cghelp is the helper side of the call-graph fixtures: Stamp
// launders a wall-clock read behind one extra hop.
package cghelp

import "time"

// Stamp reaches time.Now through clock.
func Stamp() int64 { return clock() }

func clock() int64 { return time.Now().UnixNano() }

// Pure is a clean helper.
func Pure(x int) int { return x + 1 }
