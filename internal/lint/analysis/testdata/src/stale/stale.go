// Package stale exercises unused-directive detection: a well-formed
// allow whose check runs but suppresses nothing is itself a finding.
package stale

//lint:allow retstmt nothing on this line or below returns, so this directive is dead
var A = 1

func F() int {
	//lint:allow retstmt the test analyzer flags every return; this one is deliberately waived
	return A
}
