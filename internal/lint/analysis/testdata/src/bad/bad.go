// Package bad exercises the driver's directive validation: directives
// with no check name or no reason are findings, and well-formed
// directives suppress on their line or the line below.
package bad

//lint:allow
var A = 1

//lint:allow somecheck
var B = 2

func Covered() int {
	//lint:allow retstmt the test analyzer flags every return; this one is deliberately waived
	return A + B
}

func Uncovered() int {
	return A
}
