// Package cgmain exercises the call-graph builder: static calls,
// method-value references, and interface dispatch.
package cgmain

import "fix/cghelp"

// Stepper is dispatched through dynamically.
type Stepper interface{ Step(int) int }

// Machine implements Stepper.
type Machine struct{ n int }

// Step is the concrete method an interface dispatch may reach.
func (m *Machine) Step(d int) int { m.n += d; return m.n }

// node carries the method used as a method value.
type node struct{ id int }

func (n node) helper() int { return cghelp.Pure(n.id) }

// Run holds one of every call shape.
func Run(s Stepper) int {
	x := cghelp.Stamp() // static cross-package call
	f := node{id: 1}.helper
	_ = f             // method value reference, never called here
	return s.Step(int(x)) // interface dispatch
}
