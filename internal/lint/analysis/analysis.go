// Package analysis is a standard-library-only miniature of
// golang.org/x/tools/go/analysis, carrying exactly the surface the
// consensus-lint analyzers need: an Analyzer with a Run function, a
// Pass giving it one type-checked package, plain positional
// Diagnostics, and a driver that applies the repo's suppression
// directive. The module is offline and dependency-free by policy
// (Makefile header), so the real x/tools framework is mirrored rather
// than imported; Analyzer and Pass keep field-for-field compatible
// names so the analyzers port to the upstream API mechanically if the
// dependency ever becomes available.
//
// # Suppression directive
//
//	//lint:allow <check> <reason>
//
// placed on the flagged line or on the line directly above it
// suppresses diagnostics of that check at that site. The reason is
// mandatory: a directive without one is itself reported, so every
// suppression in the tree carries a written correctness argument.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the check; it is the token suppression
	// directives name and drivers print.
	Name string
	// Doc is the one-paragraph description shown by the driver.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report / pass.Reportf. The non-error return value is
	// unused; it mirrors the upstream signature.
	Run func(*Pass) (interface{}, error)
}

// A Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Prog is the whole-program view (call graph plus every loaded
	// package) for interprocedural analyzers. Drivers that analyze a
	// single package in isolation may leave it nil; analyzers must
	// degrade to intra-package reasoning in that case.
	Prog *Program
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos
	// Category is the check name a suppression directive must use;
	// the driver fills it with the Analyzer name when empty.
	Category string
	Message  string
}

// Run applies analyzers to pkg, filters the results through the
// package's //lint:allow directives, and returns the surviving
// diagnostics in file/line order. Malformed directives (no check name
// or no reason) are reported as diagnostics of category "directive",
// and so is any directive that suppressed nothing even though its
// check ran — a stale suppression is a correctness argument nobody is
// using, and deleting it is the only way to keep the audit trail
// honest.
func Run(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	return RunProgram(nil, pkg, analyzers...)
}

// RunProgram is Run with a whole-program view attached to each Pass,
// enabling the interprocedural analyzers. prog may be nil.
func RunProgram(prog *Program, pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	return RunProgramTimed(prog, pkg, nil, analyzers...)
}

// RunProgramTimed additionally reports each analyzer's wall-clock run
// time over this package to onTime (when non-nil), so drivers can
// show where a lint pass spends its budget.
func RunProgramTimed(prog *Program, pkg *Package, onTime func(a *Analyzer, elapsed time.Duration), analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Prog:      prog,
		}
		pass.Report = func(d Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			diags = append(diags, d)
		}
		start := time.Now()
		_, err := a.Run(pass)
		if onTime != nil {
			onTime(a, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
	}
	allows, bad := directives(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !suppress(pkg.Fset, d, allows) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	// An allow whose check ran over this package but matched no
	// diagnostic is dead weight: either the code it excused was fixed,
	// or a stricter analyzer no longer flags the site. Checks that did
	// not run get the benefit of the doubt.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, a := range allows {
		if a.used || !ran[a.check] {
			continue
		}
		kept = append(kept, Diagnostic{Pos: a.pos, Category: "directive",
			Message: fmt.Sprintf("lint:allow %s suppresses nothing here; delete the stale directive", a.check)})
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file  string
	line  int
	check string
	pos   token.Pos
	used  bool
}

const directivePrefix = "//lint:allow"

// directives scans every comment in pkg for suppression directives.
// Directives missing a check name or a reason are returned as
// diagnostics instead of suppressions.
func directives(pkg *Package) ([]*allowDirective, []Diagnostic) {
	var allows []*allowDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Category: "directive",
						Message: "lint:allow directive names no check (want //lint:allow <check> <reason>)"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Category: "directive",
						Message: fmt.Sprintf("lint:allow %s carries no reason; every suppression must state its correctness argument", fields[0])})
					continue
				}
				allows = append(allows, &allowDirective{file: pos.Filename, line: pos.Line, check: fields[0], pos: c.Pos()})
			}
		}
	}
	return allows, bad
}

// suppress reports whether d is covered by a directive on its line or
// the line directly above, marking the directive used.
func suppress(fset *token.FileSet, d Diagnostic, allows []*allowDirective) bool {
	pos := fset.Position(d.Pos)
	for _, a := range allows {
		if a.file == pos.Filename && a.check == d.Category && (a.line == pos.Line || a.line == pos.Line-1) {
			a.used = true
			return true
		}
	}
	return false
}
