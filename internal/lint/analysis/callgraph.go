package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"fortyconsensus/internal/det"
)

// A Program is the whole-module view the interprocedural analyzers
// work over: every package one Loader produced, indexed, plus a
// package-level call graph whose nodes are the module's declared
// functions and methods. Stdlib functions are not nodes — calls into
// the standard library are leaves the per-analyzer source detectors
// judge directly.
//
// The graph is deliberately conservative where Go's dynamism makes the
// callee ambiguous:
//
//   - a method value or function value reference (`f := n.helper`,
//     `sort.Slice(x, n.less)`) adds an edge to the referenced
//     function even though the call happens elsewhere or never — a
//     laundering wrapper must not escape by being invoked through a
//     variable;
//   - a call through an interface method adds one edge per concrete
//     module type that implements the interface, plus an edge to the
//     interface method itself so facts can be attached either way.
//
// Both shapes are exercised by the callgraph unit tests.
type Program struct {
	Fset *token.FileSet

	pkgs  map[string]*Package
	paths []string // sorted package paths, for deterministic iteration

	funcs map[*types.Func]*FuncNode
	// impls maps an interface method to the concrete module methods a
	// dynamic dispatch through it may reach.
	impls map[*types.Func][]*types.Func
}

// A FuncNode is one declared function or method of the module together
// with its outgoing call edges.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls holds the outgoing edges in source order.
	Calls []Call
}

// A CallKind classifies how an edge was established.
type CallKind uint8

const (
	// CallStatic is a direct call whose callee is known exactly.
	CallStatic CallKind = iota
	// CallRef is a function or method value reference outside call
	// position; the referenced function may run later under a name the
	// graph cannot see, so it is kept as an edge.
	CallRef
	// CallDynamic is an edge synthesized for an interface-method
	// dispatch: one per concrete implementation, resolved
	// conservatively over every type in the program.
	CallDynamic
)

// A Call is one outgoing edge.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
	Kind   CallKind
}

// NewProgram indexes every package the loader has produced and builds
// the call graph. Call it after all target packages are loaded; the
// loader's cache then also holds every module-internal dependency.
func NewProgram(l *Loader) *Program {
	p := &Program{
		Fset:  l.Fset,
		pkgs:  make(map[string]*Package),
		funcs: make(map[*types.Func]*FuncNode),
		impls: make(map[*types.Func][]*types.Func),
	}
	p.paths = det.SortedKeys(l.cache)
	for _, path := range p.paths {
		p.pkgs[path] = l.cache[path]
	}
	for _, path := range p.paths {
		p.indexPackage(p.pkgs[path])
	}
	p.resolveInterfaces()
	return p
}

// Package returns the loaded package at path, or nil.
func (p *Program) Package(path string) *Package { return p.pkgs[path] }

// Packages returns every loaded package in path order.
func (p *Program) Packages() []*Package {
	out := make([]*Package, 0, len(p.paths))
	for _, path := range p.paths {
		out = append(out, p.pkgs[path])
	}
	return out
}

// Func returns the node for fn, or nil when fn is not declared in the
// module (stdlib, or synthesized). Generic instantiations resolve to
// their origin declaration.
func (p *Program) Func(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.funcs[fn.Origin()]
}

// Funcs returns every declared function node, ordered by position so
// diagnostics derived from a sweep are stable.
func (p *Program) Funcs() []*FuncNode {
	out := make([]*FuncNode, 0, len(p.funcs))
	//lint:allow maporder nodes are collected then sorted by position before anything observes their order
	for _, n := range p.funcs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Impls returns the concrete module methods a dispatch through
// interface method m may reach.
func (p *Program) Impls(m *types.Func) []*types.Func { return p.impls[m.Origin()] }

// indexPackage creates a node per FuncDecl and records its edges.
// Function literals are attributed to the enclosing declaration: a
// source or call inside a closure still belongs, for taint purposes,
// to the function that created it.
func (p *Program) indexPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg}
			p.funcs[obj.Origin()] = node
			p.collectEdges(node, fd.Body)
		}
	}
}

// collectEdges walks one function body and records every resolvable
// call and every function/method value reference.
func (p *Program) collectEdges(node *FuncNode, body ast.Node) {
	info := node.Pkg.TypesInfo
	// callPos marks the Fun expressions of direct calls so the
	// reference sweep below does not double-count them.
	callPos := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		callPos[fun] = true
		if fn := calleeFunc(info, fun); fn != nil {
			kind := CallStatic
			if recvIsInterface(fn) {
				kind = CallDynamic
			}
			node.Calls = append(node.Calls, Call{Callee: fn.Origin(), Pos: call.Pos(), Kind: kind})
		}
		return true
	})
	// seenSel marks selector Sel idents already judged (as a call or a
	// reference) so the Ident case below does not re-count them while
	// still descending into the selector's X operand.
	seenSel := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			seenSel[e.Sel] = true
			if callPos[ast.Expr(e)] {
				return true
			}
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				kind := CallRef
				if recvIsInterface(fn) {
					kind = CallDynamic
				}
				node.Calls = append(node.Calls, Call{Callee: fn.Origin(), Pos: e.Pos(), Kind: kind})
			}
		case *ast.Ident:
			if callPos[ast.Expr(e)] || seenSel[e] {
				return true
			}
			if fn, ok := info.Uses[e].(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
				node.Calls = append(node.Calls, Call{Callee: fn.Origin(), Pos: e.Pos(), Kind: CallRef})
			}
		}
		return true
	})
}

// calleeFunc resolves the *types.Func a call expression invokes, or
// nil for func-typed variables, builtins and conversions.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeFunc(info, f.X)
	case *ast.IndexListExpr:
		return calleeFunc(info, f.X)
	}
	return nil
}

// recvIsInterface reports whether fn is an interface method, i.e. its
// receiver type is an interface.
func recvIsInterface(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return types.IsInterface(recv.Type())
}

// resolveInterfaces computes, for every interface method appearing as
// a CallDynamic callee, the concrete module methods a dispatch may
// reach: every named type in the program that implements the
// interface contributes its method of the same name. The resolution
// is conservative — it assumes any implementing type may flow into
// the call site.
func (p *Program) resolveInterfaces() {
	// Gather the interface methods that appear as dynamic callees, as a
	// position-sorted slice so everything downstream iterates stably.
	seen := make(map[*types.Func]bool)
	var wanted []*types.Func
	for _, node := range p.Funcs() {
		for _, c := range node.Calls {
			if c.Kind == CallDynamic && !seen[c.Callee] {
				seen[c.Callee] = true
				wanted = append(wanted, c.Callee)
			}
		}
	}
	if len(wanted) == 0 {
		return
	}
	// Sweep every named type once, testing it against each wanted
	// interface.
	for _, path := range p.paths {
		pkg := p.pkgs[path]
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			for _, m := range wanted {
				iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
				if !ok {
					continue
				}
				var impl types.Type
				switch {
				case types.Implements(named, iface):
					impl = named
				case types.Implements(ptr, iface):
					impl = ptr
				default:
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				if cm, ok := obj.(*types.Func); ok {
					if p.funcs[cm.Origin()] != nil {
						p.impls[m.Origin()] = append(p.impls[m.Origin()], cm.Origin())
					}
				}
			}
		}
	}
	for _, m := range wanted {
		list := p.impls[m.Origin()]
		sort.Slice(list, func(i, j int) bool { return list[i].Pos() < list[j].Pos() })
	}
}
