package determtaint_test

import (
	"testing"

	"fortyconsensus/internal/lint/analysistest"
	"fortyconsensus/internal/lint/determtaint"
)

func TestDetermtaint(t *testing.T) {
	analysistest.Run(t, "testdata", determtaint.Analyzer, "dtproto")
}
