// Package dthelp2 is the far end of the two-hop laundering chain.
package dthelp2

import "time"

// Clock reads the wall clock directly.
func Clock() int64 { return time.Now().UnixNano() }

// Add is clean.
func Add(a, b int) int { return a + b }
