// Package dtproto plays the protocol package: every nondeterministic
// reach below goes through at least one cross-package hop, so nodeterm
// alone would pass this file.
package dtproto

import (
	"time"

	"fix/dthelp"
)

// Clocker is dispatched through dynamically; dthelp.Ticker (tainted)
// and dthelp.Counter (clean) both implement it.
type Clocker interface{ Tick() int64 }

// TwoHop reaches time.Now through dthelp.Stamp → dthelp2.Clock.
func TwoHop() int64 {
	return dthelp.Stamp() // want "call to dthelp.Stamp reaches time.Now \\(wall clock\\) via dthelp.Stamp → dthelp2.Clock"
}

// CleanCalls exercises edges that must stay silent.
func CleanCalls() int {
	return dthelp.Sum(1, 2)
}

// Goroutine reaches a goroutine spawn through a helper.
func Goroutine() {
	dthelp.Spawn(func() {}) // want "call to dthelp.Spawn reaches a goroutine spawn"
}

// MethodValue launders the chain behind a method value that is never
// even called here.
func MethodValue() func() int64 {
	f := dthelp.Ticker{}.Tick // want "call to dthelp.Ticker.Tick reaches time.Now"
	return f
}

// Dynamic dispatch is resolved conservatively: any implementation may
// flow in, and dthelp.Ticker is tainted.
func Dynamic(c Clocker) int64 {
	return c.Tick() // want "dynamic call through dtproto.Clocker.Tick may reach time.Now"
}

// DirectSource is nodeterm's to flag, not determtaint's: no diagnostic
// expected here when only determtaint runs.
func DirectSource() int64 {
	return time.Now().UnixNano()
}

// Suppressed shows the house directive applies.
func Suppressed() int64 {
	//lint:allow determtaint fixture proves a reasoned suppression is honored
	return dthelp.Stamp()
}
