// Package dthelp is the middle hop: nothing in here touches a
// forbidden operation directly except through dthelp2 or its own
// concurrency, so a per-function analyzer sees it as clean code.
package dthelp

import "fix/dthelp2"

// Stamp reaches time.Now only through dthelp2.Clock — the laundering
// wrapper shape.
func Stamp() int64 { return dthelp2.Clock() }

// Sum is a clean helper a protocol may call freely.
func Sum(a, b int) int { return dthelp2.Add(a, b) }

// Spawn hides a goroutine.
func Spawn(f func()) { go f() }

// Ticker's method launders the chain behind a method value.
type Ticker struct{}

// Tick reaches the wall clock through Stamp.
func (Ticker) Tick() int64 { return Stamp() }

// Counter is a clean implementation of the same shape.
type Counter struct{ n int64 }

// Tick just counts.
func (c *Counter) Tick() int64 { c.n++; return c.n }
