// Package determtaint implements the transitive half of the
// determinism contract. nodeterm flags nondeterministic operations at
// the site where they occur, but only inside the package under
// analysis: a helper in another internal package can read time.Now,
// and a protocol handler calling that helper launders the wall clock
// into replicated state without a single flaggable line in the
// protocol package. determtaint closes that hole by propagating a
// taint fact over the whole-module call graph: a function is tainted
// if it performs a forbidden operation directly — wall-clock reads,
// global randomness, entropy, environment reads, goroutine spawns, any
// channel operation — or if it can reach one through any chain of
// module-internal calls, including method values and conservatively
// resolved interface dispatch.
//
// The analyzer reports, for each function of the package under
// analysis, every call edge that leaves the package and lands on a
// tainted function, with the full laundering chain in the message.
// Direct sources inside the package are nodeterm's to report, so the
// two analyzers never double-flag one line; together they cover every
// path from protocol code to a nondeterministic input.
//
// Suppression follows the house rule: //lint:allow determtaint
// <reason> on the flagged call or the line above.
package determtaint

import (
	"go/ast"
	"go/types"
	"strings"

	"fortyconsensus/internal/lint/analysis"
	"fortyconsensus/internal/lint/nodeterm"
)

// Analyzer is the determtaint check.
var Analyzer = &analysis.Analyzer{
	Name: "determtaint",
	Doc:  "flag calls whose transitive closure reaches wall-clock, randomness, env reads, goroutines or channels through helper chains",
	Run:  run,
}

// taintState is the DFS color of one function.
type taintState uint8

const (
	unknown taintState = iota
	visiting
	clean
	tainted
)

// witness records why a function is tainted: either a direct source
// (desc, next == nil) or the first tainted callee on the path.
type witness struct {
	desc string
	next *types.Func
}

// tracker memoizes taint facts over one program.
type tracker struct {
	prog    *analysis.Program
	state   map[*types.Func]taintState
	witness map[*types.Func]witness
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Prog == nil {
		// Without a whole-program view there is no call graph to
		// propagate over; nodeterm still covers direct sources.
		return nil, nil
	}
	tr := &tracker{
		prog:    pass.Prog,
		state:   make(map[*types.Func]taintState),
		witness: make(map[*types.Func]witness),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := pass.Prog.Func(obj)
			if node == nil {
				continue
			}
			tr.checkEntry(pass, node)
		}
	}
	return nil, nil
}

// checkEntry reports every call edge of node that leaves the package
// under analysis and reaches a tainted function.
func (tr *tracker) checkEntry(pass *analysis.Pass, node *analysis.FuncNode) {
	for _, c := range node.Calls {
		switch c.Kind {
		case analysis.CallStatic, analysis.CallRef:
			callee := tr.prog.Func(c.Callee)
			if callee == nil || callee.Fn.Pkg() == pass.Pkg {
				continue // stdlib leaf or same-package (nodeterm's turf)
			}
			if tr.taint(c.Callee) == tainted {
				pass.Reportf(c.Pos, "call to %s reaches %s via %s; take ticks, seeds and config from the harness instead",
					funcLabel(c.Callee), tr.sourceOf(c.Callee), tr.chainOf(c.Callee))
			}
		case analysis.CallDynamic:
			for _, impl := range tr.prog.Impls(c.Callee) {
				if impl.Pkg() == pass.Pkg {
					continue
				}
				if tr.taint(impl) == tainted {
					pass.Reportf(c.Pos, "dynamic call through %s may reach %s via %s; take ticks, seeds and config from the harness instead",
						funcLabel(c.Callee), tr.sourceOf(impl), tr.chainOf(impl))
					break // one report per call site
				}
			}
		}
	}
}

// taint computes (and memoizes) whether fn can reach a forbidden
// operation. Cycles are treated as clean while in progress: recursion
// alone introduces no nondeterminism.
func (tr *tracker) taint(fn *types.Func) taintState {
	if s := tr.state[fn]; s != unknown {
		if s == visiting {
			return clean
		}
		return s
	}
	node := tr.prog.Func(fn)
	if node == nil {
		return clean // no source: out-of-module leaf, judged at the edge
	}
	tr.state[fn] = visiting
	if desc := directSource(node); desc != "" {
		tr.state[fn] = tainted
		tr.witness[fn] = witness{desc: desc}
		return tainted
	}
	for _, c := range node.Calls {
		switch c.Kind {
		case analysis.CallStatic, analysis.CallRef:
			if tr.taint(c.Callee) == tainted {
				tr.state[fn] = tainted
				tr.witness[fn] = witness{next: c.Callee}
				return tainted
			}
		case analysis.CallDynamic:
			for _, impl := range tr.prog.Impls(c.Callee) {
				if tr.taint(impl) == tainted {
					tr.state[fn] = tainted
					tr.witness[fn] = witness{next: impl}
					return tainted
				}
			}
		}
	}
	tr.state[fn] = clean
	return clean
}

// sourceOf returns the forbidden-operation description at the end of
// fn's witness chain.
func (tr *tracker) sourceOf(fn *types.Func) string {
	for {
		w := tr.witness[fn]
		if w.next == nil {
			return w.desc
		}
		fn = w.next
	}
}

// chainOf renders fn's witness chain ("det.Stamp → det.clock").
func (tr *tracker) chainOf(fn *types.Func) string {
	var hops []string
	for {
		hops = append(hops, funcLabel(fn))
		w := tr.witness[fn]
		if w.next == nil {
			return strings.Join(hops, " → ")
		}
		fn = w.next
	}
}

// directSource scans one function body for a forbidden operation and
// returns its description, or "".
func directSource(node *analysis.FuncNode) string {
	info := node.Pkg.TypesInfo
	desc := ""
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				if d := nodeterm.Forbidden(fn); d != "" {
					desc = d
				}
			}
		case *ast.GoStmt:
			desc = "a goroutine spawn"
		case *ast.SendStmt:
			desc = "a channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				desc = "a channel receive"
			}
		case *ast.SelectStmt:
			desc = "a select statement"
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					desc = "a channel close"
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					desc = "a range over a channel"
				}
			}
		}
		return desc == ""
	})
	return desc
}

// funcLabel renders fn compactly: pkg.Func or pkg.Type.Method.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
