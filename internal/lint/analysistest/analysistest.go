// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only (the module is offline by policy).
//
// Fixture layout and expectation syntax follow the upstream tool:
// sources live in <testdata>/src/<pkg>/, and a line that should be
// flagged carries a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// with one regexp per expected diagnostic on that line. Diagnostics
// are matched after //lint:allow filtering, so fixtures also prove
// that suppression works.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fortyconsensus/internal/lint/analysis"
)

// Run loads each fixture package from dir/src and applies a, reporting
// any mismatch between diagnostics and // want expectations on t.
//
// Every package directory under dir/src is loaded (as module "fix", so
// fixtures may import each other as "fix/<name>") and a whole-program
// view is built over them, but only the packages named in pkgs are
// analyzed and want-checked: helper packages exist to be reached
// through the call graph, exactly like the module's internal helpers.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(dir, "src")
	loader := analysis.NewLoader("fix", src)
	loaded := make(map[string]*analysis.Package)
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading fixture root %s: %v", src, err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		pkg, err := loader.LoadDir(filepath.Join(src, e.Name()), "fix/"+e.Name())
		if err != nil {
			t.Fatalf("loading fixture %s: %v", e.Name(), err)
		}
		loaded[e.Name()] = pkg
	}
	prog := analysis.NewProgram(loader)
	for _, name := range pkgs {
		pkg := loaded[name]
		if pkg == nil {
			t.Errorf("fixture package %s not found under %s", name, src)
			continue
		}
		diags, err := analysis.RunProgram(prog, pkg, a)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, name, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// expectation is one unmatched want regexp.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, rx := range parseWant(t, pos.String(), c.Text) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.rx != nil && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.rx = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if w.rx != nil {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..."` comment.
func parseWant(t *testing.T, at, text string) []*regexp.Regexp {
	t.Helper()
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[i+len("// want "):])
	var rxs []*regexp.Regexp
	for rest != "" {
		if rest[0] != '"' {
			t.Errorf("%s: malformed want clause %q", at, rest)
			return rxs
		}
		end := 1
		for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
			end++
		}
		if end == len(rest) {
			t.Errorf("%s: unterminated want regexp in %q", at, rest)
			return rxs
		}
		lit, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Errorf("%s: bad want literal %q: %v", at, rest[:end+1], err)
			return rxs
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", at, lit, err)
			return rxs
		}
		rxs = append(rxs, rx)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return rxs
}
