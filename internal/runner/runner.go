// Package runner executes a cluster of protocol state machines over the
// simnet fabric. Every protocol in this repository is written as a
// deterministic state machine — Step consumes one message, Tick advances
// one logical time unit, Drain yields outbound messages — and the runner
// supplies the event loop: a bucketed timing wheel of in-flight messages
// whose delivery times come from the fabric.
//
// The runner is generic over the protocol's message type, so Paxos
// messages and PBFT messages never mix, and it supports byzantine
// injection by intercepting a node's outbox with a mutator.
//
// The event loop is built for throughput without sacrificing replay
// determinism:
//
//   - In-flight messages live in a timing wheel keyed by delivery tick
//     rather than a binary heap. Fabric delays are small bounded
//     integers, so O(1) FIFO buckets replace O(log n) heap churn while
//     preserving the (tick, sequence) delivery order exactly.
//   - Nodes live in dense slices behind a NodeID→slot table, not maps,
//     so the per-delivery and per-tick paths never hash.
//   - Outbox collection tracks a dirty set of nodes that just Stepped
//     or Ticked instead of sweeping the whole cluster after every
//     delivery.
package runner

import (
	"sort"
	"sync"

	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

// Node is the contract every protocol replica implements.
type Node[M any] interface {
	// Step consumes one delivered message.
	Step(m M)
	// Tick advances the node's local clock by one unit (timeout logic).
	Tick()
	// Drain removes and returns messages the node wants to send.
	Drain() []M
}

// Interceptor rewrites a node's outbound messages; returning nil drops
// the message. Byzantine behaviours (equivocation, corruption, silence)
// are expressed as interceptors so protocol code stays honest.
type Interceptor[M any] func(m M) []M

// Config wires a Cluster. Dest and Src extract addressing from a message;
// Kind (optional) labels messages for complexity accounting.
type Config[M any] struct {
	Fabric *simnet.Fabric
	Dest   func(M) types.NodeID
	Src    func(M) types.NodeID
	Kind   func(M) string
}

// Stats aggregates message-complexity metrics for an experiment run.
// The JSON tags serve cmd/consensus-bench -json.
//
// The fault-event counters record the run's fault exposure — how much
// chaos the cluster was subjected to — so campaign output
// (cmd/consensus-explore) and bench tables can report it alongside
// message counts. Each counts applications of the corresponding
// Cluster method, whether or not the call changed state (crashing an
// already-crashed node still counts as an injected fault event).
type Stats struct {
	Sent      int            `json:"sent"`      // messages handed to the fabric
	Delivered int            `json:"delivered"` // messages that reached a Step call
	Dropped   int            `json:"dropped"`   // lost to drops, partitions, or crashes
	ByKind    map[string]int `json:"byKind"`    // delivered counts per message kind
	Ticks     int            `json:"ticks"`     // elapsed logical time

	Crashes    int `json:"crashes,omitempty"`    // Crash calls
	Restarts   int `json:"restarts,omitempty"`   // Restart calls
	Partitions int `json:"partitions,omitempty"` // Partition calls
	Heals      int `json:"heals,omitempty"`      // Heal calls
	CutLinks   int `json:"cutLinks,omitempty"`   // CutLink calls
}

// event is one queued message. The sequence number breaks ties between
// messages due at the same tick, pinning replay order.
type event[M any] struct {
	seq uint64
	msg M
}

// wheel is a power-of-two ring of FIFO buckets, one per future tick.
// Messages are appended to the bucket for their delivery tick in send
// order, so draining a bucket front-to-back yields exactly the
// (tick, seq) order the previous heap implementation produced. The
// wheel grows (re-bucketing in place) whenever a delay reaches its
// horizon, so arbitrary InjectDelayed delays stay correct.
type wheel[M any] struct {
	buckets [][]event[M] // len(buckets) is a power of two
	mask    int
	count   int
}

const initialWheelSize = 64

// push queues e for delivery at absolute tick at (> now).
func (w *wheel[M]) push(now, at int, e event[M]) {
	delay := at - now
	if delay < 1 {
		delay = 1
		at = now + 1
	}
	if delay >= len(w.buckets) {
		w.grow(now, delay)
	}
	idx := at & w.mask
	w.buckets[idx] = append(w.buckets[idx], e)
	w.count++
}

// grow resizes the ring until delay fits, re-bucketing pending events.
// All pending events sit in (now, now+oldSize], so each maps to a
// distinct bucket in the larger ring and FIFO order is preserved.
func (w *wheel[M]) grow(now, delay int) {
	size := len(w.buckets)
	if size == 0 {
		size = initialWheelSize
	}
	for size <= delay {
		size *= 2
	}
	old := w.buckets
	oldMask := w.mask
	w.buckets = make([][]event[M], size)
	w.mask = size - 1
	for at := now + 1; at <= now+len(old); at++ {
		b := old[at&oldMask]
		if len(b) > 0 {
			w.buckets[at&w.mask] = b
		}
	}
}

// take removes and returns the bucket due at tick now.
func (w *wheel[M]) take(now int) []event[M] {
	if w.count == 0 || len(w.buckets) == 0 {
		return nil
	}
	idx := now & w.mask
	b := w.buckets[idx]
	if len(b) == 0 {
		return nil
	}
	w.buckets[idx] = nil
	w.count -= len(b)
	return b
}

// noSlot marks a NodeID with no registered node.
const noSlot = int32(-1)

// maxDenseID bounds the direct-indexed NodeID→slot table; IDs at or
// above it (or negative) fall back to a map so a stray huge ID cannot
// allocate an enormous slice.
const maxDenseID = 1 << 16

// Cluster runs a set of protocol nodes over one fabric.
//
// Node state lives in dense parallel slices indexed by "slot"
// (registration index); the order slice holds slots sorted by NodeID so
// iteration order — and therefore every schedule — is independent of
// Add order.
type Cluster[M any] struct {
	cfg Config[M]

	nodes     []Node[M]
	ids       []types.NodeID // slot -> NodeID
	intercept []Interceptor[M]
	paused    []bool // crashed nodes don't Step or Tick
	isDirty   []bool

	order []int32 // slots sorted by NodeID: deterministic iteration

	slots      []int32                // NodeID -> slot for small non-negative IDs
	slotsExtra map[types.NodeID]int32 // fallback for negative or huge IDs

	// pausedUnknown and interceptUnknown hold Crash/Intercept calls for
	// IDs that have no node yet; Add transfers them to the slot tables.
	pausedUnknown    map[types.NodeID]bool
	interceptUnknown map[types.NodeID]Interceptor[M]

	dirty   []int32 // slots with possibly non-empty outboxes, deduped via isDirty
	scratch []int32 // recycled batch buffer for collect

	queue wheel[M]
	seq   uint64
	now   int
	stats Stats

	// Global-aggregate bookkeeping: the portion of stats (and ticks)
	// already flushed into the process-wide counters.
	flushed    Stats
	flushedNow int
}

// New builds an empty cluster.
func New[M any](cfg Config[M]) *Cluster[M] {
	if cfg.Fabric == nil {
		cfg.Fabric = simnet.NewFabric(simnet.Options{})
	}
	return &Cluster[M]{
		cfg:   cfg,
		stats: Stats{ByKind: make(map[string]int)},
	}
}

// slot resolves id to its dense index, or noSlot if unregistered.
func (c *Cluster[M]) slot(id types.NodeID) int32 {
	if id >= 0 && int(id) < len(c.slots) {
		return c.slots[id]
	}
	if s, ok := c.slotsExtra[id]; ok {
		return s
	}
	return noSlot
}

// Add registers a node under id. Adding replaces any previous node.
func (c *Cluster[M]) Add(id types.NodeID, n Node[M]) {
	if s := c.slot(id); s != noSlot {
		c.nodes[s] = n
		return
	}
	s := int32(len(c.nodes))
	c.nodes = append(c.nodes, n)
	c.ids = append(c.ids, id)
	c.intercept = append(c.intercept, c.interceptUnknown[id])
	delete(c.interceptUnknown, id)
	c.paused = append(c.paused, c.pausedUnknown[id])
	delete(c.pausedUnknown, id)
	c.isDirty = append(c.isDirty, false)

	if id >= 0 && id < maxDenseID {
		if need := int(id) + 1; need > len(c.slots) {
			grown := make([]int32, need)
			copy(grown, c.slots)
			for i := len(c.slots); i < need; i++ {
				grown[i] = noSlot
			}
			c.slots = grown
		}
		c.slots[id] = s
	} else {
		if c.slotsExtra == nil {
			c.slotsExtra = make(map[types.NodeID]int32)
		}
		c.slotsExtra[id] = s
	}

	// Insert the slot at its sorted position: one copy, no re-sort.
	i := sort.Search(len(c.order), func(i int) bool { return c.ids[c.order[i]] > id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = s
}

// Node returns the node registered under id, or nil.
func (c *Cluster[M]) Node(id types.NodeID) Node[M] {
	if s := c.slot(id); s != noSlot {
		return c.nodes[s]
	}
	return nil
}

// Intercept installs a byzantine outbox mutator for node id.
func (c *Cluster[M]) Intercept(id types.NodeID, f Interceptor[M]) {
	if s := c.slot(id); s != noSlot {
		c.intercept[s] = f
		return
	}
	if c.interceptUnknown == nil {
		c.interceptUnknown = make(map[types.NodeID]Interceptor[M])
	}
	c.interceptUnknown[id] = f
}

// Crash stops a node from stepping/ticking and cuts it off the network.
func (c *Cluster[M]) Crash(id types.NodeID) {
	if s := c.slot(id); s != noSlot {
		c.paused[s] = true
	} else {
		if c.pausedUnknown == nil {
			c.pausedUnknown = make(map[types.NodeID]bool)
		}
		c.pausedUnknown[id] = true
	}
	c.stats.Crashes++
	c.cfg.Fabric.Crash(id)
}

// Restart resumes a crashed node. Protocol state is whatever the node
// object still holds; protocols that persist via WAL reload externally
// (replace the node via Add after restoring — see the raft crash-recovery
// tests for the pattern).
func (c *Cluster[M]) Restart(id types.NodeID) {
	if s := c.slot(id); s != noSlot {
		c.paused[s] = false
	} else {
		delete(c.pausedUnknown, id)
	}
	c.stats.Restarts++
	c.cfg.Fabric.Restart(id)
}

// Partition splits the fabric into non-communicating groups (see
// simnet.Fabric.Partition) and counts the fault event.
func (c *Cluster[M]) Partition(groups ...[]types.NodeID) {
	c.stats.Partitions++
	c.cfg.Fabric.Partition(groups...)
}

// Heal removes any partition and counts the fault event.
func (c *Cluster[M]) Heal() {
	c.stats.Heals++
	c.cfg.Fabric.Heal()
}

// CutLink severs the directed link from->to and counts the fault event.
func (c *Cluster[M]) CutLink(from, to types.NodeID) {
	c.stats.CutLinks++
	c.cfg.Fabric.CutLink(from, to)
}

// RestoreLink restores a severed directed link.
func (c *Cluster[M]) RestoreLink(from, to types.NodeID) {
	c.cfg.Fabric.RestoreLink(from, to)
}

// SetLinkDelay and ClearLinkDelay forward per-link delay overrides to
// the fabric so fault injectors can drive every network fault through
// one surface (the nemesis Target interface).
func (c *Cluster[M]) SetLinkDelay(from, to types.NodeID, lo, hi int) {
	c.cfg.Fabric.SetLinkDelay(from, to, lo, hi)
}

// ClearLinkDelay removes a per-link delay override.
func (c *Cluster[M]) ClearLinkDelay(from, to types.NodeID) {
	c.cfg.Fabric.ClearLinkDelay(from, to)
}

// SetDropRate / ClearDropRate / SetDupRate / ClearDupRate forward
// fabric-wide rate overrides (drop storms, duplication bursts).
func (c *Cluster[M]) SetDropRate(p float64) { c.cfg.Fabric.SetDropRate(p) }
func (c *Cluster[M]) ClearDropRate()        { c.cfg.Fabric.ClearDropRate() }
func (c *Cluster[M]) SetDupRate(p float64)  { c.cfg.Fabric.SetDupRate(p) }
func (c *Cluster[M]) ClearDupRate()         { c.cfg.Fabric.ClearDupRate() }

// ArmByzantine installs a canned byzantine interceptor on node id.
// The modes are protocol-agnostic (they rewrite the outbox without
// inspecting message contents), which is what lets a generic fault
// schedule arm them on any cluster:
//
//	mute  the node processes messages but sends nothing (fail-silent)
//	dup   every outbound message is sent twice
//
// Unknown modes are ignored. DisarmByzantine removes the interceptor —
// including any protocol-specific one installed via Intercept.
func (c *Cluster[M]) ArmByzantine(id types.NodeID, mode string) {
	switch mode {
	case "mute":
		c.Intercept(id, func(m M) []M { return nil })
	case "dup":
		c.Intercept(id, func(m M) []M { return []M{m, m} })
	}
}

// DisarmByzantine removes node id's outbox interceptor.
func (c *Cluster[M]) DisarmByzantine(id types.NodeID) {
	c.Intercept(id, nil)
}

// Crashed reports whether id is currently crashed.
func (c *Cluster[M]) Crashed(id types.NodeID) bool {
	if s := c.slot(id); s != noSlot {
		return c.paused[s]
	}
	return c.pausedUnknown[id]
}

// Now returns the current logical time in ticks.
func (c *Cluster[M]) Now() int { return c.now }

// Fabric returns the cluster's network fabric for fault injection.
func (c *Cluster[M]) Fabric() *simnet.Fabric { return c.cfg.Fabric }

// Stats returns a snapshot of the run's message accounting.
func (c *Cluster[M]) Stats() Stats {
	s := c.stats
	s.Ticks = c.now
	kinds := make(map[string]int, len(c.stats.ByKind))
	for k, v := range c.stats.ByKind {
		kinds[k] = v
	}
	s.ByKind = kinds
	return s
}

// ResetStats zeroes message accounting (useful to measure steady state
// after warmup).
func (c *Cluster[M]) ResetStats() {
	c.flushGlobal()
	c.stats = Stats{ByKind: make(map[string]int)}
	c.flushed = Stats{}
}

// Inject queues a message from outside the cluster (a client) for
// delivery one tick from now, bypassing fabric drop decisions so tests
// can rely on requests arriving.
func (c *Cluster[M]) Inject(m M) { c.InjectDelayed(m, 1) }

// InjectDelayed queues an outside message for delivery after the given
// number of ticks (minimum 1), modelling client-side network jitter.
func (c *Cluster[M]) InjectDelayed(m M, delay int) {
	if delay < 1 {
		delay = 1
	}
	c.seq++
	c.queue.push(c.now, c.now+delay, event[M]{seq: c.seq, msg: m})
}

// send routes one protocol-emitted message through the fabric.
func (c *Cluster[M]) send(m M) {
	from, to := c.cfg.Src(m), c.cfg.Dest(m)
	c.stats.Sent++
	v, dup, hasDup := c.cfg.Fabric.Classify(from, to)
	if v.Drop {
		c.stats.Dropped++
	} else {
		c.seq++
		c.queue.push(c.now, c.now+v.Delay, event[M]{seq: c.seq, msg: m})
	}
	if hasDup && !dup.Drop {
		c.seq++
		c.queue.push(c.now, c.now+dup.Delay, event[M]{seq: c.seq, msg: m})
	}
}

// markDirty flags a node whose outbox may now be non-empty.
func (c *Cluster[M]) markDirty(s int32) {
	if !c.isDirty[s] {
		c.isDirty[s] = true
		c.dirty = append(c.dirty, s)
	}
}

// collect drains the outboxes of dirty nodes — those that Stepped or
// Ticked since the last collect — into the fabric, applying
// interceptors. A node that emitted is drained again on the next round
// (mirroring the previous implementation's loop-until-quiet sweep), so
// a message generated in response to a Tick is posted in the same tick.
// Rounds process nodes in NodeID order to keep schedules replayable.
func (c *Cluster[M]) collect() {
	for len(c.dirty) > 0 {
		batch := c.dirty
		c.dirty = c.scratch[:0]
		if len(batch) > 1 {
			sorted := true
			for i := 1; i < len(batch); i++ {
				if c.ids[batch[i-1]] > c.ids[batch[i]] {
					sorted = false
					break
				}
			}
			if !sorted {
				sort.Slice(batch, func(i, j int) bool { return c.ids[batch[i]] < c.ids[batch[j]] })
			}
		}
		for _, s := range batch {
			c.isDirty[s] = false
			if c.paused[s] {
				continue
			}
			out := c.nodes[s].Drain()
			if len(out) == 0 {
				continue
			}
			mut := c.intercept[s]
			for _, m := range out {
				if mut == nil {
					c.send(m)
					continue
				}
				for _, mm := range mut(m) {
					c.send(mm)
				}
			}
			c.markDirty(s)
		}
		c.scratch = batch[:0]
	}
}

// deliver hands one due message to its destination node.
func (c *Cluster[M]) deliver(m M) {
	to := c.cfg.Dest(m)
	s := c.slot(to)
	if s == noSlot || c.paused[s] || c.cfg.Fabric.Down(to) {
		c.stats.Dropped++
		return
	}
	c.stats.Delivered++
	if c.cfg.Kind != nil {
		c.stats.ByKind[c.cfg.Kind(m)]++
	}
	c.nodes[s].Step(m)
	c.markDirty(s)
	c.collect()
}

// Step advances the simulation one tick: deliver all messages due now,
// tick every node, and post newly generated messages.
func (c *Cluster[M]) Step() {
	c.now++
	mask := c.queue.mask
	if b := c.queue.take(c.now); b != nil {
		for i := range b {
			c.deliver(b[i].msg)
		}
		// Recycle the bucket unless the wheel grew mid-delivery (the
		// ring was reallocated) or something re-occupied the index.
		if c.queue.mask == mask {
			if idx := c.now & mask; c.queue.buckets[idx] == nil {
				c.queue.buckets[idx] = b[:0]
			}
		}
	}
	for _, s := range c.order {
		if c.paused[s] {
			continue
		}
		c.nodes[s].Tick()
		c.markDirty(s)
	}
	c.collect()
}

// Run advances the simulation by n ticks.
func (c *Cluster[M]) Run(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
	c.flushGlobal()
}

// RunUntil steps until pred returns true or maxTicks elapse, reporting
// whether pred fired.
func (c *Cluster[M]) RunUntil(pred func() bool, maxTicks int) bool {
	defer c.flushGlobal()
	for i := 0; i < maxTicks; i++ {
		if pred() {
			return true
		}
		c.Step()
	}
	return pred()
}

// Pending returns the number of in-flight messages.
func (c *Cluster[M]) Pending() int { return c.queue.count }

// ---------------------------------------------------------------------------
// Process-wide accounting

// global accumulates accounting across every cluster in the process, so
// tooling (cmd/consensus-bench -json) can report per-experiment message
// totals without threading a collector through each experiment.
var global struct {
	mu sync.Mutex
	s  Stats
}

// GlobalStats snapshots the process-wide aggregate of all clusters'
// accounting. Clusters flush their deltas at the end of every Run and
// RunUntil, so a caller that runs experiments sequentially can diff
// snapshots taken around each one.
func GlobalStats() Stats {
	global.mu.Lock()
	defer global.mu.Unlock()
	s := global.s
	s.ByKind = make(map[string]int, len(global.s.ByKind))
	for k, v := range global.s.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// Sub returns the counter-wise difference s - prev, for diffing two
// GlobalStats snapshots.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Sent:       s.Sent - prev.Sent,
		Delivered:  s.Delivered - prev.Delivered,
		Dropped:    s.Dropped - prev.Dropped,
		Ticks:      s.Ticks - prev.Ticks,
		Crashes:    s.Crashes - prev.Crashes,
		Restarts:   s.Restarts - prev.Restarts,
		Partitions: s.Partitions - prev.Partitions,
		Heals:      s.Heals - prev.Heals,
		CutLinks:   s.CutLinks - prev.CutLinks,
		ByKind:     make(map[string]int),
	}
	for k, v := range s.ByKind {
		if dv := v - prev.ByKind[k]; dv != 0 {
			d.ByKind[k] = dv
		}
	}
	return d
}

// flushGlobal adds this cluster's accounting since the last flush to
// the process-wide aggregate.
func (c *Cluster[M]) flushGlobal() {
	dSent := c.stats.Sent - c.flushed.Sent
	dDelivered := c.stats.Delivered - c.flushed.Delivered
	dDropped := c.stats.Dropped - c.flushed.Dropped
	dTicks := c.now - c.flushedNow
	dCrashes := c.stats.Crashes - c.flushed.Crashes
	dRestarts := c.stats.Restarts - c.flushed.Restarts
	dPartitions := c.stats.Partitions - c.flushed.Partitions
	dHeals := c.stats.Heals - c.flushed.Heals
	dCutLinks := c.stats.CutLinks - c.flushed.CutLinks
	if dSent == 0 && dDelivered == 0 && dDropped == 0 && dTicks == 0 &&
		dCrashes == 0 && dRestarts == 0 && dPartitions == 0 && dHeals == 0 && dCutLinks == 0 {
		return
	}
	global.mu.Lock()
	global.s.Sent += dSent
	global.s.Delivered += dDelivered
	global.s.Dropped += dDropped
	global.s.Ticks += dTicks
	global.s.Crashes += dCrashes
	global.s.Restarts += dRestarts
	global.s.Partitions += dPartitions
	global.s.Heals += dHeals
	global.s.CutLinks += dCutLinks
	if global.s.ByKind == nil {
		global.s.ByKind = make(map[string]int)
	}
	for k, v := range c.stats.ByKind {
		if dv := v - c.flushed.ByKind[k]; dv != 0 {
			global.s.ByKind[k] += dv
		}
	}
	global.mu.Unlock()
	c.flushedNow = c.now
	c.flushed = c.Stats()
}
