// Package runner executes a cluster of protocol state machines over the
// simnet fabric. Every protocol in this repository is written as a
// deterministic state machine — Step consumes one message, Tick advances
// one logical time unit, Drain yields outbound messages — and the runner
// supplies the event loop: a priority queue of in-flight messages whose
// delivery times come from the fabric.
//
// The runner is generic over the protocol's message type, so Paxos
// messages and PBFT messages never mix, and it supports byzantine
// injection by intercepting a node's outbox with a mutator.
package runner

import (
	"container/heap"
	"sort"

	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

// Node is the contract every protocol replica implements.
type Node[M any] interface {
	// Step consumes one delivered message.
	Step(m M)
	// Tick advances the node's local clock by one unit (timeout logic).
	Tick()
	// Drain removes and returns messages the node wants to send.
	Drain() []M
}

// Interceptor rewrites a node's outbound messages; returning nil drops
// the message. Byzantine behaviours (equivocation, corruption, silence)
// are expressed as interceptors so protocol code stays honest.
type Interceptor[M any] func(m M) []M

// Config wires a Cluster. Dest and Src extract addressing from a message;
// Kind (optional) labels messages for complexity accounting.
type Config[M any] struct {
	Fabric *simnet.Fabric
	Dest   func(M) types.NodeID
	Src    func(M) types.NodeID
	Kind   func(M) string
}

// Stats aggregates message-complexity metrics for an experiment run.
type Stats struct {
	Sent      int            // messages handed to the fabric
	Delivered int            // messages that reached a Step call
	Dropped   int            // lost to drops, partitions, or crashes
	ByKind    map[string]int // delivered counts per message kind
	Ticks     int            // elapsed logical time
}

type event[M any] struct {
	at  int
	seq uint64 // tie-break for determinism
	msg M
}

type eventHeap[M any] []event[M]

func (h eventHeap[M]) Len() int { return len(h) }
func (h eventHeap[M]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap[M]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap[M]) Push(x any)   { *h = append(*h, x.(event[M])) }
func (h *eventHeap[M]) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Cluster runs a set of protocol nodes over one fabric.
type Cluster[M any] struct {
	cfg       Config[M]
	nodes     map[types.NodeID]Node[M]
	order     []types.NodeID // deterministic iteration order
	intercept map[types.NodeID]Interceptor[M]
	paused    map[types.NodeID]bool // crashed nodes don't Step or Tick
	queue     eventHeap[M]
	seq       uint64
	now       int
	stats     Stats
}

// New builds an empty cluster.
func New[M any](cfg Config[M]) *Cluster[M] {
	if cfg.Fabric == nil {
		cfg.Fabric = simnet.NewFabric(simnet.Options{})
	}
	return &Cluster[M]{
		cfg:       cfg,
		nodes:     make(map[types.NodeID]Node[M]),
		intercept: make(map[types.NodeID]Interceptor[M]),
		paused:    make(map[types.NodeID]bool),
		stats:     Stats{ByKind: make(map[string]int)},
	}
}

// Add registers a node under id. Adding replaces any previous node.
func (c *Cluster[M]) Add(id types.NodeID, n Node[M]) {
	if _, ok := c.nodes[id]; !ok {
		c.order = append(c.order, id)
		sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	}
	c.nodes[id] = n
}

// Node returns the node registered under id, or nil.
func (c *Cluster[M]) Node(id types.NodeID) Node[M] { return c.nodes[id] }

// Intercept installs a byzantine outbox mutator for node id.
func (c *Cluster[M]) Intercept(id types.NodeID, f Interceptor[M]) { c.intercept[id] = f }

// Crash stops a node from stepping/ticking and cuts it off the network.
func (c *Cluster[M]) Crash(id types.NodeID) {
	c.paused[id] = true
	c.cfg.Fabric.Crash(id)
}

// Restart resumes a crashed node. Protocol state is whatever the node
// object still holds; protocols that persist via WAL reload externally.
func (c *Cluster[M]) Restart(id types.NodeID) {
	delete(c.paused, id)
	c.cfg.Fabric.Restart(id)
}

// Crashed reports whether id is currently crashed.
func (c *Cluster[M]) Crashed(id types.NodeID) bool { return c.paused[id] }

// Now returns the current logical time in ticks.
func (c *Cluster[M]) Now() int { return c.now }

// Fabric returns the cluster's network fabric for fault injection.
func (c *Cluster[M]) Fabric() *simnet.Fabric { return c.cfg.Fabric }

// Stats returns a snapshot of the run's message accounting.
func (c *Cluster[M]) Stats() Stats {
	s := c.stats
	s.Ticks = c.now
	kinds := make(map[string]int, len(c.stats.ByKind))
	for k, v := range c.stats.ByKind {
		kinds[k] = v
	}
	s.ByKind = kinds
	return s
}

// ResetStats zeroes message accounting (useful to measure steady state
// after warmup).
func (c *Cluster[M]) ResetStats() {
	c.stats = Stats{ByKind: make(map[string]int)}
}

// Inject queues a message from outside the cluster (a client) for
// delivery one tick from now, bypassing fabric drop decisions so tests
// can rely on requests arriving.
func (c *Cluster[M]) Inject(m M) { c.InjectDelayed(m, 1) }

// InjectDelayed queues an outside message for delivery after the given
// number of ticks (minimum 1), modelling client-side network jitter.
func (c *Cluster[M]) InjectDelayed(m M, delay int) {
	if delay < 1 {
		delay = 1
	}
	c.seq++
	heap.Push(&c.queue, event[M]{at: c.now + delay, seq: c.seq, msg: m})
}

// send routes one protocol-emitted message through the fabric.
func (c *Cluster[M]) send(m M) {
	from, to := c.cfg.Src(m), c.cfg.Dest(m)
	c.stats.Sent++
	v, dup, hasDup := c.cfg.Fabric.Classify(from, to)
	if v.Drop {
		c.stats.Dropped++
	} else {
		c.seq++
		heap.Push(&c.queue, event[M]{at: c.now + v.Delay, seq: c.seq, msg: m})
	}
	if hasDup && !dup.Drop {
		c.seq++
		heap.Push(&c.queue, event[M]{at: c.now + dup.Delay, seq: c.seq, msg: m})
	}
}

// collect drains every node's outbox into the fabric, applying
// interceptors. It loops until no node emits anything so that a message
// generated in response to a Tick is posted in the same tick.
func (c *Cluster[M]) collect() {
	for {
		emitted := false
		for _, id := range c.order {
			if c.paused[id] {
				continue
			}
			out := c.nodes[id].Drain()
			if len(out) == 0 {
				continue
			}
			emitted = true
			mut := c.intercept[id]
			for _, m := range out {
				if mut == nil {
					c.send(m)
					continue
				}
				for _, mm := range mut(m) {
					c.send(mm)
				}
			}
		}
		if !emitted {
			return
		}
	}
}

// Step advances the simulation one tick: deliver all messages due now,
// tick every node, and post newly generated messages.
func (c *Cluster[M]) Step() {
	c.now++
	for len(c.queue) > 0 && c.queue[0].at <= c.now {
		e := heap.Pop(&c.queue).(event[M])
		to := c.cfg.Dest(e.msg)
		n, ok := c.nodes[to]
		if !ok || c.paused[to] || c.cfg.Fabric.Down(to) {
			c.stats.Dropped++
			continue
		}
		c.stats.Delivered++
		if c.cfg.Kind != nil {
			c.stats.ByKind[c.cfg.Kind(e.msg)]++
		}
		n.Step(e.msg)
		c.collect()
	}
	for _, id := range c.order {
		if c.paused[id] {
			continue
		}
		c.nodes[id].Tick()
	}
	c.collect()
}

// Run advances the simulation by n ticks.
func (c *Cluster[M]) Run(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}

// RunUntil steps until pred returns true or maxTicks elapse, reporting
// whether pred fired.
func (c *Cluster[M]) RunUntil(pred func() bool, maxTicks int) bool {
	for i := 0; i < maxTicks; i++ {
		if pred() {
			return true
		}
		c.Step()
	}
	return pred()
}

// Pending returns the number of in-flight messages.
func (c *Cluster[M]) Pending() int { return len(c.queue) }
