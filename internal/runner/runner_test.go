package runner

import (
	"fmt"
	"testing"

	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

// pingMsg is a toy protocol message: a counter relayed around a ring.
type pingMsg struct {
	from, to types.NodeID
	hop      int
	kind     string
}

// ringNode forwards each received ping to the next node until hop limit.
type ringNode struct {
	id       types.NodeID
	n        int
	maxHop   int
	received int
	out      []pingMsg
}

func (r *ringNode) Step(m pingMsg) {
	r.received++
	if m.hop < r.maxHop {
		r.out = append(r.out, pingMsg{
			from: r.id, to: types.NodeID((int(r.id) + 1) % r.n),
			hop: m.hop + 1, kind: "ping",
		})
	}
}
func (r *ringNode) Tick() {}
func (r *ringNode) Drain() []pingMsg {
	out := r.out
	r.out = nil
	return out
}

func ringCluster(n, maxHop int, fabric *simnet.Fabric) (*Cluster[pingMsg], []*ringNode) {
	c := New(Config[pingMsg]{
		Fabric: fabric,
		Dest:   func(m pingMsg) types.NodeID { return m.to },
		Src:    func(m pingMsg) types.NodeID { return m.from },
		Kind:   func(m pingMsg) string { return m.kind },
	})
	nodes := make([]*ringNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = &ringNode{id: types.NodeID(i), n: n, maxHop: maxHop}
		c.Add(types.NodeID(i), nodes[i])
	}
	return c, nodes
}

func TestRingDelivery(t *testing.T) {
	c, nodes := ringCluster(5, 10, nil)
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(30)
	total := 0
	for _, n := range nodes {
		total += n.received
	}
	if total != 11 { // injected ping + 10 relays
		t.Fatalf("total received = %d, want 11", total)
	}
	st := c.Stats()
	if st.Delivered != 11 || st.ByKind["ping"] != 11 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Sent != 10 { // injections bypass the fabric
		t.Fatalf("sent = %d, want 10", st.Sent)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int, Stats) {
		fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 7, DropRate: 0.1, Seed: 99})
		c, nodes := ringCluster(7, 50, fab)
		c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
		c.Run(200)
		total := 0
		for _, n := range nodes {
			total += n.received
		}
		return total, c.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1.Delivered != s2.Delivered || s1.Dropped != s2.Dropped {
		t.Fatalf("replay diverged: (%d,%+v) vs (%d,%+v)", t1, s1, t2, s2)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	c, nodes := ringCluster(3, 100, nil)
	c.Crash(1)
	if !c.Crashed(1) {
		t.Fatal("Crashed(1) false after Crash")
	}
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(50)
	if nodes[1].received != 0 {
		t.Fatalf("crashed node received %d messages", nodes[1].received)
	}
	// The ring is broken at node 1, so node 2 gets nothing either.
	if nodes[2].received != 0 {
		t.Fatalf("node past crash received %d", nodes[2].received)
	}
	c.Restart(1)
	c.Inject(pingMsg{from: -1, to: 1, hop: 0, kind: "ping"})
	c.Run(50)
	if nodes[1].received == 0 {
		t.Fatal("restarted node received nothing")
	}
}

func TestInterceptorEquivocation(t *testing.T) {
	c, nodes := ringCluster(4, 3, nil)
	// Node 0 duplicates everything it sends to two destinations.
	c.Intercept(0, func(m pingMsg) []pingMsg {
		m2 := m
		m2.to = types.NodeID((int(m.to) + 1) % 4)
		return []pingMsg{m, m2}
	})
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(30)
	if nodes[2].received == 0 {
		t.Fatal("equivocated copy never arrived")
	}
}

func TestInterceptorDrop(t *testing.T) {
	c, nodes := ringCluster(3, 10, nil)
	c.Intercept(0, func(m pingMsg) []pingMsg { return nil })
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(30)
	if nodes[1].received != 0 {
		t.Fatal("dropped message was delivered")
	}
}

func TestRunUntil(t *testing.T) {
	c, nodes := ringCluster(5, 10, nil)
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	ok := c.RunUntil(func() bool { return nodes[0].received >= 2 }, 100)
	if !ok {
		t.Fatal("RunUntil never satisfied")
	}
	if c.Now() >= 100 {
		t.Fatalf("RunUntil ran to the cap (%d ticks)", c.Now())
	}
	if c.RunUntil(func() bool { return false }, 5) {
		t.Fatal("RunUntil reported success on constant-false predicate")
	}
}

// tickerNode emits one message per tick, to exercise Tick-driven sends.
type tickerNode struct {
	id    types.NodeID
	sent  int
	out   []pingMsg
	recvd int
}

func (tk *tickerNode) Step(m pingMsg) { tk.recvd++ }
func (tk *tickerNode) Tick() {
	tk.sent++
	tk.out = append(tk.out, pingMsg{from: tk.id, to: 1 - tk.id, kind: "tick"})
}
func (tk *tickerNode) Drain() []pingMsg { out := tk.out; tk.out = nil; return out }

func TestTickDrivenSends(t *testing.T) {
	c := New(Config[pingMsg]{
		Dest: func(m pingMsg) types.NodeID { return m.to },
		Src:  func(m pingMsg) types.NodeID { return m.from },
	})
	a, b := &tickerNode{id: 0}, &tickerNode{id: 1}
	c.Add(0, a)
	c.Add(1, b)
	c.Run(10)
	if a.sent != 10 || b.sent != 10 {
		t.Fatalf("ticks: %d, %d; want 10 each", a.sent, b.sent)
	}
	if a.recvd == 0 || b.recvd == 0 {
		t.Fatal("tick-driven messages never delivered")
	}
	if c.Pending() == 0 {
		t.Log("note: all messages flushed (MinDelay=1)")
	}
	c.ResetStats()
	if c.Stats().Delivered != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestInjectDelayed(t *testing.T) {
	c, nodes := ringCluster(3, 0, nil)
	c.InjectDelayed(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"}, 10)
	c.Run(5)
	if nodes[0].received != 0 {
		t.Fatal("delayed injection arrived early")
	}
	c.Run(10)
	if nodes[0].received != 1 {
		t.Fatal("delayed injection never arrived")
	}
	// Delay below 1 clamps to 1.
	c.InjectDelayed(pingMsg{from: -1, to: 1, hop: 0, kind: "ping"}, -5)
	c.Run(2)
	if nodes[1].received != 1 {
		t.Fatal("clamped injection lost")
	}
}

// traceNode records every delivery as "tick:receiver:sender:hop" in a
// shared trace and fans each message out to two neighbours, producing a
// schedule that is sensitive to delivery and send ordering.
type traceNode struct {
	id     types.NodeID
	n      int
	maxHop int
	c      *Cluster[pingMsg]
	trace  *[]string
	out    []pingMsg
}

func (tn *traceNode) Step(m pingMsg) {
	*tn.trace = append(*tn.trace, fmt.Sprintf("%d:%d:%d:%d", tn.c.Now(), tn.id, m.from, m.hop))
	if m.hop < tn.maxHop {
		for d := 1; d <= 2; d++ {
			tn.out = append(tn.out, pingMsg{
				from: tn.id, to: types.NodeID((int(tn.id) + d) % tn.n),
				hop: m.hop + 1, kind: "ping",
			})
		}
	}
}
func (tn *traceNode) Tick()            {}
func (tn *traceNode) Drain() []pingMsg { out := tn.out; tn.out = nil; return out }

// TestAddOrderDoesNotAffectSchedule registers the same nodes in
// different orders and requires byte-identical delivery traces: the
// cluster's iteration order is defined by NodeID, never by insertion
// history.
func TestAddOrderDoesNotAffectSchedule(t *testing.T) {
	run := func(order []types.NodeID) []string {
		fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 5, DropRate: 0.05, Seed: 42})
		c := New(Config[pingMsg]{
			Fabric: fab,
			Dest:   func(m pingMsg) types.NodeID { return m.to },
			Src:    func(m pingMsg) types.NodeID { return m.from },
			Kind:   func(m pingMsg) string { return m.kind },
		})
		var trace []string
		for _, id := range order {
			c.Add(id, &traceNode{id: id, n: len(order), maxHop: 6, c: c, trace: &trace})
		}
		c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
		c.Run(60)
		return trace
	}
	want := run([]types.NodeID{0, 1, 2, 3})
	for _, order := range [][]types.NodeID{{3, 1, 0, 2}, {2, 3, 1, 0}} {
		got := run(order)
		if len(got) != len(want) {
			t.Fatalf("Add order %v: %d deliveries, want %d", order, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Add order %v: delivery %d = %q, want %q", order, i, got[i], want[i])
			}
		}
	}
}

// TestDupRateDoubleDelivery forces DupRate to 1 so every fabric send is
// delivered twice while counting as a single Sent message.
func TestDupRateDoubleDelivery(t *testing.T) {
	fab := simnet.NewFabric(simnet.Options{DupRate: 1, Seed: 1})
	c, nodes := ringCluster(3, 1, fab)
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(10)
	// Node 0 relays the injected ping once; the fabric duplicates it.
	if nodes[1].received != 2 {
		t.Fatalf("duplicate delivery count = %d, want 2", nodes[1].received)
	}
	st := c.Stats()
	if st.Sent != 1 {
		t.Fatalf("Sent = %d, want 1 (duplication is a fabric effect)", st.Sent)
	}
	if st.Delivered != 3 { // injected ping + both copies
		t.Fatalf("Delivered = %d, want 3", st.Delivered)
	}
}

// TestInterceptorExpansionAccounting checks that an interceptor's
// replacement messages — none for drops, several for equivocation — are
// what the cluster actually sends and charges to Stats.
func TestInterceptorExpansionAccounting(t *testing.T) {
	c, nodes := ringCluster(4, 1, nil)
	calls := 0
	c.Intercept(0, func(m pingMsg) []pingMsg {
		calls++
		if calls == 1 {
			return nil // censor the first relay entirely
		}
		m2, m3 := m, m
		m2.to = 2
		m3.to = 3
		return []pingMsg{m2, m3, m2}
	})
	// Two pings through node 0: the first relay is censored, the second
	// replaced by three messages to other destinations.
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(5)
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(15)
	if nodes[1].received != 0 {
		t.Fatalf("censored destination received %d", nodes[1].received)
	}
	if nodes[2].received != 2 || nodes[3].received != 1 {
		t.Fatalf("expanded deliveries = %d,%d; want 2,1", nodes[2].received, nodes[3].received)
	}
	st := c.Stats()
	if st.Sent != 3 { // the three replacement messages; the censored one never reaches the fabric
		t.Fatalf("Sent = %d, want 3", st.Sent)
	}
}

// TestDeliveryAfterRestart pins the crash-window semantics: a message
// due while its destination is crashed is dropped, while one due after
// the node restarted is delivered.
func TestDeliveryAfterRestart(t *testing.T) {
	c, nodes := ringCluster(2, 0, nil)
	// Due at tick 2; node 1 crashes at tick 0 and restarts at tick 5.
	c.InjectDelayed(pingMsg{from: -1, to: 1, hop: 0, kind: "ping"}, 2)
	// Due at tick 8, after the restart.
	c.InjectDelayed(pingMsg{from: -1, to: 1, hop: 0, kind: "ping"}, 8)
	c.Crash(1)
	c.Run(4)
	if nodes[1].received != 0 {
		t.Fatalf("crashed node received %d messages", nodes[1].received)
	}
	if got := c.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1 (message due mid-crash)", got)
	}
	c.Restart(1)
	c.Run(6)
	if nodes[1].received != 1 {
		t.Fatalf("post-restart deliveries = %d, want 1", nodes[1].received)
	}
}

// TestPendingAccounting tracks the in-flight queue through injections,
// deliveries, and fabric duplication.
func TestPendingAccounting(t *testing.T) {
	fab := simnet.NewFabric(simnet.Options{DupRate: 1, Seed: 3})
	c, nodes := ringCluster(3, 1, fab)
	if c.Pending() != 0 {
		t.Fatalf("fresh cluster Pending = %d", c.Pending())
	}
	c.InjectDelayed(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"}, 1)
	c.InjectDelayed(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"}, 3)
	if c.Pending() != 2 {
		t.Fatalf("Pending after two injections = %d, want 2", c.Pending())
	}
	// Tick 1: first injection delivered; node 0's relay plus its fabric
	// duplicate join the second injection in flight.
	c.Step()
	if c.Pending() != 3 {
		t.Fatalf("Pending after tick 1 = %d, want 3", c.Pending())
	}
	c.Run(10)
	if c.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", c.Pending())
	}
	if nodes[1].received != 4 { // both relays, each duplicated
		t.Fatalf("node 1 received %d, want 4", nodes[1].received)
	}
}

func TestFaultEventCounters(t *testing.T) {
	c, _ := ringCluster(4, 3, nil)
	c.Crash(1)
	c.Crash(1) // counts again: exposure counts injections, not transitions
	c.Restart(1)
	c.Partition([]types.NodeID{0, 1}, []types.NodeID{2, 3})
	c.Heal()
	c.CutLink(0, 2)
	c.CutLink(2, 0)
	c.RestoreLink(0, 2)
	st := c.Stats()
	if st.Crashes != 2 || st.Restarts != 1 || st.Partitions != 1 || st.Heals != 1 || st.CutLinks != 2 {
		t.Fatalf("fault counters = %+v", st)
	}

	// Counters flow through Sub like the message counters.
	d := st.Sub(Stats{Crashes: 1, CutLinks: 1, ByKind: map[string]int{}})
	if d.Crashes != 1 || d.CutLinks != 1 || d.Restarts != 1 {
		t.Fatalf("Sub fault counters = %+v", d)
	}

	// And into the global aggregate at flush time.
	before := GlobalStats()
	c.Run(1)
	diff := GlobalStats().Sub(before)
	if diff.Crashes != 2 || diff.Restarts != 1 || diff.Partitions != 1 || diff.Heals != 1 || diff.CutLinks != 2 {
		t.Fatalf("global fault counters = %+v", diff)
	}
}

func TestArmByzantineModes(t *testing.T) {
	// mute: node 1 receives but relays nothing, so the ring stops there.
	c, nodes := ringCluster(3, 6, nil)
	c.ArmByzantine(1, "mute")
	c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c.Run(20)
	if nodes[2].received != 0 {
		t.Fatalf("mute: node 2 received %d messages, want 0", nodes[2].received)
	}
	if nodes[1].received != 1 {
		t.Fatalf("mute: node 1 received %d, want 1", nodes[1].received)
	}

	// dup: node 1 sends everything twice, so downstream counts double.
	c2, nodes2 := ringCluster(3, 2, nil)
	c2.ArmByzantine(1, "dup")
	c2.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c2.Run(20)
	if nodes2[2].received != 2 {
		t.Fatalf("dup: node 2 received %d, want 2", nodes2[2].received)
	}

	// disarm restores normal relaying.
	c3, nodes3 := ringCluster(3, 6, nil)
	c3.ArmByzantine(1, "mute")
	c3.DisarmByzantine(1)
	c3.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
	c3.Run(20)
	if nodes3[2].received == 0 {
		t.Fatal("disarm: node 2 received nothing")
	}
}
