package runner

import (
	"testing"

	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

// chatterNode sends one message to every peer on each Tick and absorbs
// everything it receives — a dense steady-state load with no protocol
// logic, so the benchmark measures the event loop itself.
type chatterNode struct {
	id    types.NodeID
	n     int
	out   []pingMsg
	recvd int
}

func (cn *chatterNode) Step(m pingMsg) { cn.recvd++ }
func (cn *chatterNode) Tick() {
	for i := 0; i < cn.n; i++ {
		if types.NodeID(i) == cn.id {
			continue
		}
		cn.out = append(cn.out, pingMsg{from: cn.id, to: types.NodeID(i), kind: "chat"})
	}
}
func (cn *chatterNode) Drain() []pingMsg { out := cn.out; cn.out = nil; return out }

func chatterCluster(n int, opt simnet.Options) *Cluster[pingMsg] {
	c := New(Config[pingMsg]{
		Fabric: simnet.NewFabric(opt),
		Dest:   func(m pingMsg) types.NodeID { return m.to },
		Src:    func(m pingMsg) types.NodeID { return m.from },
		Kind:   func(m pingMsg) string { return m.kind },
	})
	for i := 0; i < n; i++ {
		c.Add(types.NodeID(i), &chatterNode{id: types.NodeID(i), n: n})
	}
	return c
}

// BenchmarkClusterStep measures one tick of an n-node all-to-all cluster
// on a uniform 1-tick network: n·(n-1) sends and deliveries per Step.
func BenchmarkClusterStep(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(types.NodeID(n).String(), func(b *testing.B) {
			c := chatterCluster(n, simnet.Options{Seed: 1})
			c.Run(5) // warm up steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
		})
	}
}

// BenchmarkClusterStepJitter adds delay jitter and drops, exercising the
// fabric RNG path and out-of-order queue behaviour.
func BenchmarkClusterStepJitter(b *testing.B) {
	c := chatterCluster(16, simnet.Options{MinDelay: 1, MaxDelay: 9, DropRate: 0.05, DupRate: 0.02, Seed: 7})
	c.Run(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkClusterStepIdle measures the per-tick floor: nodes that never
// send, so the loop only ticks nodes and sweeps outboxes.
func BenchmarkClusterStepIdle(b *testing.B) {
	c := New(Config[pingMsg]{
		Dest: func(m pingMsg) types.NodeID { return m.to },
		Src:  func(m pingMsg) types.NodeID { return m.from },
	})
	for i := 0; i < 64; i++ {
		c.Add(types.NodeID(i), &ringNode{id: types.NodeID(i), n: 64})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkRingLatency replays the runner_test ring workload: a single
// token circling 7 nodes under jitter, dominated by queue push/pop.
func BenchmarkRingLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 7, Seed: 42})
		c, _ := ringCluster(7, 200, fab)
		c.Inject(pingMsg{from: -1, to: 0, hop: 0, kind: "ping"})
		c.Run(400)
	}
}
