package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fortyconsensus/internal/types"
)

// Config-change log entries. A membership change is an ordinary
// replicated value carrying a reserved 8-byte magic prefix; protocols
// detect it at append/learn time and adjust their member set, while the
// smr layer recognizes it and skips the state machine. The prefix's
// high byte (0xC0) cannot collide with encoded client requests, whose
// first 8 bytes are a small dense client ID.

// ConfOp is the kind of membership change.
type ConfOp uint8

const (
	// ConfAdd adds one node to the configuration.
	ConfAdd ConfOp = iota + 1
	// ConfRemove removes one node from the configuration.
	ConfRemove
)

func (o ConfOp) String() string {
	switch o {
	case ConfAdd:
		return "add"
	case ConfRemove:
		return "remove"
	}
	return fmt.Sprintf("ConfOp(%d)", uint8(o))
}

// ConfChange is a single-server membership change.
type ConfChange struct {
	Op   ConfOp
	Node types.NodeID
}

func (c ConfChange) String() string {
	return fmt.Sprintf("conf-%s(%v)", c.Op, c.Node)
}

var confMagic = [8]byte{0xC0, 0x4F, 'C', 'O', 'N', 'F', 0x01, 0x5A}

// ErrConfChange reports a value with the config-change prefix but a
// malformed body.
var ErrConfChange = errors.New("snapshot: malformed config-change value")

// EncodeConfChange packs a membership change into a log value:
// magic(8) | u8 op | u64 node.
func EncodeConfChange(c ConfChange) types.Value {
	buf := make([]byte, 0, 8+1+8)
	buf = append(buf, confMagic[:]...)
	buf = append(buf, byte(c.Op))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(c.Node)))
	return types.Value(buf)
}

// IsConfChange reports whether v carries the config-change prefix.
func IsConfChange(v types.Value) bool {
	if len(v) < 8 {
		return false
	}
	for i := range confMagic {
		if v[i] != confMagic[i] {
			return false
		}
	}
	return true
}

// DecodeConfChange parses a config-change value. Call IsConfChange
// first; a prefixed but malformed body is an explicit error.
func DecodeConfChange(v types.Value) (ConfChange, error) {
	if !IsConfChange(v) || len(v) != 17 {
		return ConfChange{}, ErrConfChange
	}
	c := ConfChange{
		Op:   ConfOp(v[8]),
		Node: types.NodeID(int64(binary.BigEndian.Uint64(v[9:]))),
	}
	if c.Op != ConfAdd && c.Op != ConfRemove {
		return ConfChange{}, fmt.Errorf("%w: op %d", ErrConfChange, v[8])
	}
	return c, nil
}

// Apply returns the member set after applying c to ms: Add appends (a
// no-op if already present), Remove deletes (a no-op if absent). The
// result is always a fresh sorted slice; ms is never mutated.
func (c ConfChange) Apply(ms []types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, len(ms)+1)
	seen := false
	for _, m := range ms {
		if m == c.Node {
			seen = true
			if c.Op == ConfRemove {
				continue
			}
		}
		out = append(out, m)
	}
	if c.Op == ConfAdd && !seen {
		out = append(out, c.Node)
		// Insertion sort the tail in: member sets stay sorted so every
		// replica iterates them in the same order.
		for i := len(out) - 1; i > 0 && out[i] < out[i-1]; i-- {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}
