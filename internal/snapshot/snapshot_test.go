package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"fortyconsensus/internal/types"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Snapshot{
		{},
		{LastIndex: 1, LastTerm: 1},
		{LastIndex: 42, LastTerm: 7, Members: []types.NodeID{0, 1, 2}},
		{LastIndex: 1 << 40, LastTerm: 9, Members: []types.NodeID{3}, State: []byte("kv-state")},
		{LastIndex: 5, Members: []types.NodeID{0, 1, 2, 3, 4}, State: bytes.Repeat([]byte{0xAB}, 10_000)},
	}
	for i, want := range cases {
		b := Encode(want)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.LastIndex != want.LastIndex || got.LastTerm != want.LastTerm {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
		if len(got.Members) != len(want.Members) {
			t.Fatalf("case %d: members %v want %v", i, got.Members, want.Members)
		}
		for j := range got.Members {
			if got.Members[j] != want.Members[j] {
				t.Fatalf("case %d: members %v want %v", i, got.Members, want.Members)
			}
		}
		if !bytes.Equal(got.State, want.State) {
			t.Fatalf("case %d: state mismatch", i)
		}
	}
}

// Every truncation of a valid encoding must decode to an explicit
// error — the repo-wide codec standard.
func TestDecodeTruncationFuzz(t *testing.T) {
	full := Encode(Snapshot{
		LastIndex: 99, LastTerm: 3,
		Members: []types.NodeID{0, 1, 2, 5},
		State:   []byte("the quick brown fox"),
	})
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
	}
	// Trailing garbage is an error too.
	if _, err := Decode(append(append([]byte(nil), full...), 0x00)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// Any single-bit corruption must fail the checksum (or framing).
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x80
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded without error", i)
		}
	}
}

func TestDecodeVersionErrors(t *testing.T) {
	if _, err := Decode([]byte("XXXX00000000")); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad magic: got %v", err)
	}
	b := Encode(Snapshot{LastIndex: 1})
	b[3] = '9'
	if _, err := Decode(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v", err)
	}
}

func TestChunkTransferResume(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789"), 100) // 1000 bytes
	const size = 64

	var asm Assembler
	off := 0
	steps := 0
	for {
		steps++
		chunk, done := ChunkAt(data, off, size)
		// Lose every third chunk once: the sender retransmits from the
		// receiver's stated offset.
		if steps%3 == 0 && off == asm.Offset() && steps < 40 {
			continue // dropped on the wire; receiver never saw it
		}
		if !asm.Add(off, chunk) {
			off = asm.Offset() // receiver nacks with the offset it wants
			continue
		}
		if done {
			break
		}
		off = asm.Offset()
	}
	if got := asm.Take(); !bytes.Equal(got, data) {
		t.Fatalf("assembled %d bytes, want %d", len(got), len(data))
	}
}

func TestChunkAtEdges(t *testing.T) {
	if c, done := ChunkAt(nil, 0, 16); len(c) != 0 || !done {
		t.Fatalf("empty data: got %v,%v", c, done)
	}
	data := []byte("abcdef")
	if c, done := ChunkAt(data, 0, 0); !bytes.Equal(c, data) || !done {
		t.Fatalf("zero size should default: got %q,%v", c, done)
	}
	if c, done := ChunkAt(data, 4, 2); !bytes.Equal(c, []byte("ef")) || !done {
		t.Fatalf("final chunk: got %q,%v", c, done)
	}
	if c, done := ChunkAt(data, 99, 2); c != nil || !done {
		t.Fatalf("past-end offset: got %q,%v", c, done)
	}
}

func TestAssemblerRejectsOutOfOrder(t *testing.T) {
	var a Assembler
	if !a.Add(0, []byte("ab")) {
		t.Fatal("in-order chunk rejected")
	}
	if a.Add(5, []byte("zz")) {
		t.Fatal("gap chunk accepted")
	}
	if a.Add(0, []byte("ab")) {
		t.Fatal("duplicate chunk accepted")
	}
	if a.Offset() != 2 {
		t.Fatalf("offset %d want 2", a.Offset())
	}
}

func TestConfChangeRoundTrip(t *testing.T) {
	for _, c := range []ConfChange{
		{Op: ConfAdd, Node: 3},
		{Op: ConfRemove, Node: 0},
		{Op: ConfAdd, Node: 1 << 20},
	} {
		v := EncodeConfChange(c)
		if !IsConfChange(v) {
			t.Fatalf("%v: IsConfChange false", c)
		}
		got, err := DecodeConfChange(v)
		if err != nil || got != c {
			t.Fatalf("%v: got %v err %v", c, got, err)
		}
	}
	// Client-request values must never look like config changes.
	if IsConfChange(types.Value("client request payload")) {
		t.Fatal("plain value detected as conf change")
	}
	if IsConfChange(nil) {
		t.Fatal("nil value detected as conf change")
	}
	// Prefixed but malformed bodies are explicit errors.
	v := EncodeConfChange(ConfChange{Op: ConfAdd, Node: 1})
	if _, err := DecodeConfChange(v[:12]); err == nil {
		t.Fatal("truncated conf change decoded")
	}
	bad := append(types.Value(nil), v...)
	bad[8] = 99
	if _, err := DecodeConfChange(bad); err == nil {
		t.Fatal("unknown op decoded")
	}
}

func TestConfChangeApply(t *testing.T) {
	ms := []types.NodeID{0, 1, 2}
	got := ConfChange{Op: ConfAdd, Node: 4}.Apply(ms)
	want := []types.NodeID{0, 1, 2, 4}
	eq := func(a, b []types.NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eq(got, want) {
		t.Fatalf("add: got %v want %v", got, want)
	}
	if !eq(ConfChange{Op: ConfAdd, Node: 1}.Apply(ms), ms) {
		t.Fatal("re-add changed members")
	}
	if !eq(ConfChange{Op: ConfRemove, Node: 1}.Apply(ms), []types.NodeID{0, 2}) {
		t.Fatal("remove failed")
	}
	if !eq(ConfChange{Op: ConfRemove, Node: 9}.Apply(ms), ms) {
		t.Fatal("remove-absent changed members")
	}
	// Out-of-order add lands sorted.
	if !eq(ConfChange{Op: ConfAdd, Node: 1}.Apply([]types.NodeID{0, 2, 3}), []types.NodeID{0, 1, 2, 3}) {
		t.Fatal("add not sorted")
	}
	if !eq(ms, []types.NodeID{0, 1, 2}) {
		t.Fatal("Apply mutated its input")
	}
}
