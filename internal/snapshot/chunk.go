package snapshot

// Chunked, offset-resumable transfer. The sender slices one immutable
// encoded snapshot into fixed-size chunks addressed by byte offset; the
// receiver assembles them strictly in order, acknowledging the next
// offset it needs. Because every chunk names its offset, a transfer
// survives message loss, duplication, and leader retransmission from an
// arbitrary position: the receiver simply re-states the offset it wants
// and the sender resumes there. A new snapshot (different LastIndex)
// resets the assembler.

// ChunkAt returns the chunk of data starting at off, at most size bytes,
// and whether it is the final chunk. It returns nil, true for an offset
// at or beyond the end (an empty snapshot transfers as one empty final
// chunk at offset 0).
func ChunkAt(data []byte, off, size int) ([]byte, bool) {
	if size <= 0 {
		size = DefaultChunkSize
	}
	if off < 0 || off >= len(data) {
		if off == 0 && len(data) == 0 {
			return nil, true
		}
		return nil, true
	}
	end := off + size
	if end >= len(data) {
		return data[off:], true
	}
	return data[off:end], false
}

// DefaultChunkSize is the transfer chunk size when a config leaves it 0.
const DefaultChunkSize = 4096

// Assembler accumulates in-order chunks of one snapshot transfer.
type Assembler struct {
	buf []byte
}

// Offset returns the next byte offset the assembler needs.
func (a *Assembler) Offset() int { return len(a.buf) }

// Add appends a chunk that must start exactly at Offset(); it reports
// whether the chunk was accepted. Out-of-order chunks are rejected
// (the caller answers with the wanted Offset so the sender can resume).
func (a *Assembler) Add(off int, chunk []byte) bool {
	if off != len(a.buf) {
		return false
	}
	a.buf = append(a.buf, chunk...)
	return true
}

// Take returns the assembled bytes and resets the assembler.
func (a *Assembler) Take() []byte {
	b := a.buf
	a.buf = nil
	return b
}

// Reset discards any partial transfer.
func (a *Assembler) Reset() { a.buf = nil }
