// Package snapshot defines the canonical snapshot/v1 wire format shared
// by every log-compaction and state-transfer path in this repository:
// raft InstallSnapshot, multipaxos state-transfer catch-up, WAL
// snapshot-then-suffix recovery, and the live runtime's snapshot
// streaming all carry the same encoded blob.
//
// A snapshot captures everything a fresh replica needs to join at a log
// position without replaying the compacted prefix: the last covered
// index, the term (or ballot number) under which that index was
// written, the cluster membership in effect at that index, and an
// opaque application payload (typically an smr.Executor session table
// plus state-machine bytes).
//
// The package also defines config-change values — membership changes
// ride the replicated log as ordinary commands with a reserved magic
// prefix, exactly as Gray & Lamport's "Consensus on Transaction Commit"
// suggests treating reconfiguration: just another agreed log entry.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"fortyconsensus/internal/types"
)

// Snapshot is one encoded state-transfer unit.
type Snapshot struct {
	// LastIndex is the highest log index the snapshot covers; the log
	// below and including it may be discarded.
	LastIndex types.Seq
	// LastTerm is the raft term (or paxos ballot number) of the entry at
	// LastIndex, needed for the AppendEntries consistency check at the
	// snapshot boundary.
	LastTerm uint64
	// Members is the cluster configuration in effect at LastIndex.
	Members []types.NodeID
	// State is the opaque application payload (executor sessions + state
	// machine bytes); nil for protocol-only snapshots.
	State []byte
}

// Wire format (snapshot/v1):
//
//	"SNP" ver(u8='1') | u64 lastIndex | u64 lastTerm |
//	u32 nMembers | nMembers × u64 member |
//	u32 stateLen | state | u32 crc32c(everything before)
var magic = [3]byte{'S', 'N', 'P'}

const version = '1'

var (
	// ErrTruncated reports an encoding shorter than its headers claim.
	ErrTruncated = errors.New("snapshot: truncated encoding")
	// ErrVersion reports a blob whose magic or version byte is unknown.
	ErrVersion = errors.New("snapshot: unknown format version")
	// ErrChecksum reports a blob whose CRC trailer does not match.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes s into the snapshot/v1 format.
func Encode(s Snapshot) []byte {
	buf := make([]byte, 0, 4+8+8+4+8*len(s.Members)+4+len(s.State)+4)
	buf = append(buf, magic[:]...)
	buf = append(buf, version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.LastIndex))
	buf = binary.BigEndian.AppendUint64(buf, s.LastTerm)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Members)))
	for _, m := range s.Members {
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m)))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.State)))
	buf = append(buf, s.State...)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// Decode parses a snapshot/v1 blob. Every malformed input — wrong
// magic, unknown version, short headers, short body, bad checksum,
// trailing garbage — yields an explicit error, never a partial value.
func Decode(b []byte) (Snapshot, error) {
	if len(b) < 4 {
		return Snapshot{}, ErrTruncated
	}
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] {
		return Snapshot{}, ErrVersion
	}
	if b[3] != version {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrVersion, b[3])
	}
	if len(b) < 4+8+8+4 {
		return Snapshot{}, ErrTruncated
	}
	s := Snapshot{
		LastIndex: types.Seq(binary.BigEndian.Uint64(b[4:])),
		LastTerm:  binary.BigEndian.Uint64(b[12:]),
	}
	n := int(binary.BigEndian.Uint32(b[20:]))
	off := 24
	if n > (len(b)-off)/8 {
		return Snapshot{}, ErrTruncated
	}
	if n > 0 {
		s.Members = make([]types.NodeID, n)
		for i := range s.Members {
			s.Members[i] = types.NodeID(int64(binary.BigEndian.Uint64(b[off:])))
			off += 8
		}
	}
	if len(b) < off+4 {
		return Snapshot{}, ErrTruncated
	}
	sl := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if sl > len(b)-off-4 {
		return Snapshot{}, ErrTruncated
	}
	if sl > 0 {
		s.State = append([]byte(nil), b[off:off+sl]...)
	}
	off += sl
	if len(b) != off+4 {
		return Snapshot{}, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(b)-off-4)
	}
	if crc32.Checksum(b[:off], crcTable) != binary.BigEndian.Uint32(b[off:]) {
		return Snapshot{}, ErrChecksum
	}
	return s, nil
}
