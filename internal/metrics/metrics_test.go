package metrics

import (
	"strings"
	"testing"
)

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	if s := h.Snapshot(); s != (Summary{}) {
		t.Fatalf("empty snapshot = %+v, want zero", s)
	}
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	s := h.Snapshot()
	want := Summary{Count: 100, Mean: 50.5, Min: 1, P50: 50, P90: 90, P99: 99, Max: 100}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	// The snapshot must agree with the individual accessors.
	if s.P50 != h.Percentile(50) || s.P99 != h.Percentile(99) || s.Mean != h.Mean() {
		t.Fatal("snapshot disagrees with accessors")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []int{5, 1, 9, 3, 7} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Sum() != 25 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if p := h.Percentile(50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(100); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	if p := h.Percentile(1); p != 1 {
		t.Fatalf("p1 = %d", p)
	}
	if !strings.Contains(h.Summary(), "n=5") {
		t.Fatalf("summary = %q", h.Summary())
	}
	// Adding after sorting keeps stats correct.
	h.Add(0)
	if h.Min() != 0 {
		t.Fatal("post-sort add ignored")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "protocol", "nodes", "phases")
	tb.AddRow("paxos", "2f+1", "2")
	tb.AddRowf("pbft", 4, 3.0)
	tb.AddRow("short") // missing cells render empty
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// All rows align: same rendered width.
	for i := 2; i < len(lines); i++ {
		if len(lines[i]) != len(lines[1]) {
			t.Fatalf("ragged row %d:\n%s", i, out)
		}
	}
	if !strings.Contains(out, "3.00") {
		t.Fatalf("float cell not formatted: %s", out)
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("F7: fork rate", "delay")
	f.Series("pow").Add(1, 0.01)
	f.Series("pow").Add(10, 0.2)
	f.Series("baseline").Add(1, 0.5)
	out := f.String()
	if !strings.Contains(out, "F7: fork rate") || !strings.Contains(out, "pow") {
		t.Fatalf("figure missing parts:\n%s", out)
	}
	// Row for x=10 exists with empty baseline cell.
	if !strings.Contains(out, "10") {
		t.Fatalf("missing x=10 row:\n%s", out)
	}
	// Series accessor reuses existing series.
	if len(f.series) != 2 {
		t.Fatalf("series count = %d", len(f.series))
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Fatalf("trimFloat(3) = %q", trimFloat(3))
	}
	if trimFloat(3.14159) != "3.142" {
		t.Fatalf("trimFloat pi = %q", trimFloat(3.14159))
	}
}
