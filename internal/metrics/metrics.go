// Package metrics collects and renders the measurements the experiment
// harness reports: latency histograms, message-complexity counters, and
// the aligned text tables/series that cmd/consensus-bench prints in the
// shape of the paper's artifacts.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fortyconsensus/internal/det"
)

// Histogram accumulates integer samples (latencies in ticks, message
// counts per operation) and reports order statistics.
type Histogram struct {
	samples []int
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample.
func (h *Histogram) Add(v int) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() int {
	s := 0
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(len(h.samples))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Ints(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 with no
// samples.
func (h *Histogram) Percentile(p float64) int {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() int {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Summary renders "mean/p50/p99 (n)" for table cells.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("%.1f/%d/%d (n=%d)", h.Mean(), h.Percentile(50), h.Percentile(99), h.Count())
}

// Summary is a one-shot snapshot of a histogram's order statistics —
// the machine-readable sibling of the Summary string, shared by the
// live runtime's metrics endpoint and the load generator's report.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   int     `json:"min"`
	P50   int     `json:"p50"`
	P90   int     `json:"p90"`
	P99   int     `json:"p99"`
	Max   int     `json:"max"`
}

// Snapshot computes the histogram's summary statistics.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// Table renders aligned experiment tables. Columns are fixed at
// construction; rows are appended as formatted cells.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row. Cells beyond the header count are dropped;
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of fmt.Sprint-rendered values.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.2f", v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(s...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, hd := range t.headers {
		widths[i] = len(hd)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence — the text analogue of one figure
// line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure groups series under a caption and renders them as a table of
// x versus each series' y.
type Figure struct {
	Caption string
	XLabel  string
	series  []*Series
}

// NewFigure creates a figure.
func NewFigure(caption, xlabel string) *Figure { return &Figure{Caption: caption, XLabel: xlabel} }

// Series returns (creating if needed) the named series.
func (f *Figure) Series(name string) *Series {
	for _, s := range f.series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	f.series = append(f.series, s)
	return s
}

// String renders the figure as an aligned x/series table. Series may have
// different x supports; rows are the sorted union of x values.
func (f *Figure) String() string {
	xset := map[float64]bool{}
	for _, s := range f.series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := det.SortedKeys(xset)
	headers := append([]string{f.XLabel}, make([]string, len(f.series))...)
	for i, s := range f.series {
		headers[i+1] = s.Name
	}
	t := NewTable(f.Caption, headers...)
	for _, x := range xs {
		row := make([]string, len(headers))
		row[0] = trimFloat(x)
		for i, s := range f.series {
			row[i+1] = ""
			for j, sx := range s.X {
				if sx == x {
					row[i+1] = trimFloat(s.Y[j])
					break
				}
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
