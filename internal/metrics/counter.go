package metrics

// CounterSet is an ordered collection of named uint64 counters —
// per-shard commit/abort tallies, per-transaction-class counts, and the
// like. Names keep first-Add insertion order so rendered output is
// deterministic without sorting at read time.
type CounterSet struct {
	names []string
	vals  map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]uint64)}
}

// Add increments the named counter by delta, creating it at zero first.
func (c *CounterSet) Add(name string, delta uint64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += delta
}

// Get returns the named counter's value (zero if absent).
func (c *CounterSet) Get(name string) uint64 { return c.vals[name] }

// Names returns the counter names in first-Add order.
func (c *CounterSet) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Total sums every counter.
func (c *CounterSet) Total() uint64 {
	var t uint64
	for _, n := range c.names {
		t += c.vals[n]
	}
	return t
}
