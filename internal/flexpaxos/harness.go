package flexpaxos

import (
	"fortyconsensus/internal/runner"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

// Cluster bundles Flexible Paxos replicas over one fabric.
type Cluster struct {
	*runner.Cluster[Message]
	Nodes []*Node
}

// NewCluster builds n replicas (IDs 0..n-1); cfg.Quorums.N is forced to
// n. It returns the replica constructor's error for invalid quorum
// systems (Q1+Q2 <= N).
func NewCluster(n int, fabric *simnet.Fabric, cfg Config) (*Cluster, error) {
	cfg.Quorums.N = n
	rc := runner.New(runner.Config[Message]{Fabric: fabric, Dest: Dest, Src: Src, Kind: Kind})
	c := &Cluster{Cluster: rc}
	for i := 0; i < n; i++ {
		node, err := New(types.NodeID(i), cfg)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		rc.Add(types.NodeID(i), node)
	}
	return c, nil
}

// TakeAllDecisions drains every replica's decision queue, indexed by
// replica position.
func (c *Cluster) TakeAllDecisions() [][]types.Decision {
	out := make([][]types.Decision, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.TakeDecisions()
	}
	return out
}

// WaitLeader runs until a live leader exists, returning it (nil on
// timeout).
func (c *Cluster) WaitLeader(maxTicks int) *Node {
	var lead *Node
	c.RunUntil(func() bool {
		for _, n := range c.Nodes {
			if n.IsLeader() && !c.Crashed(n.id) {
				lead = n
				return true
			}
		}
		return false
	}, maxTicks)
	return lead
}
