package flexpaxos

import (
	"testing"

	"fortyconsensus/internal/quorum"
	"fortyconsensus/internal/runner"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

type cluster struct {
	*runner.Cluster[Message]
	nodes []*Node
}

func newCluster(t *testing.T, q quorum.Flexible, fabric *simnet.Fabric, seed uint64) *cluster {
	t.Helper()
	rc := runner.New(runner.Config[Message]{Fabric: fabric, Dest: Dest, Src: Src, Kind: Kind})
	c := &cluster{Cluster: rc}
	for i := 0; i < q.N; i++ {
		n, err := New(types.NodeID(i), Config{Quorums: q, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
		rc.Add(types.NodeID(i), n)
	}
	return c
}

func (c *cluster) waitLeader(max int) *Node {
	var lead *Node
	c.RunUntil(func() bool {
		for _, n := range c.nodes {
			if n.IsLeader() && !c.Crashed(n.id) {
				lead = n
				return true
			}
		}
		return false
	}, max)
	return lead
}

func TestInvalidQuorumsRejected(t *testing.T) {
	_, err := New(0, Config{Quorums: quorum.Flexible{N: 5, Q1: 2, Q2: 3}})
	if err == nil {
		t.Fatal("non-intersecting quorums accepted")
	}
}

func TestMajoritySpecialCase(t *testing.T) {
	c := newCluster(t, quorum.Flexible{N: 5, Q1: 3, Q2: 3}, nil, 1)
	lead := c.waitLeader(500)
	if lead == nil {
		t.Fatal("no leader")
	}
	lead.Submit(types.Value("classic"))
	if !c.RunUntil(func() bool { return lead.CommitFrontier() >= 1 }, 200) {
		t.Fatal("no commit")
	}
}

func TestSmallReplicationQuorum(t *testing.T) {
	// Q1=4, Q2=2 over N=5: commits need only 2 acceptors.
	c := newCluster(t, quorum.Flexible{N: 5, Q1: 4, Q2: 2}, nil, 2)
	lead := c.waitLeader(500)
	if lead == nil {
		t.Fatal("no leader")
	}
	// Crash ALL but the leader and one other node: Q2=2 still commits
	// (a majority system would stall with 2 of 5).
	alive := 0
	for _, n := range c.nodes {
		if n.id != lead.id && alive < 1 {
			alive++
			continue
		}
		if n.id != lead.id {
			c.Crash(n.id)
		}
	}
	lead.Submit(types.Value("two-node-commit"))
	if !c.RunUntil(func() bool { return lead.CommitFrontier() >= 1 }, 300) {
		t.Fatal("Q2=2 could not commit with 2 live nodes")
	}
}

func TestMajorityWouldStallWhereFlexCommits(t *testing.T) {
	// Control: with majority quorums, 2 live nodes of 5 cannot commit.
	c := newCluster(t, quorum.Flexible{N: 5, Q1: 3, Q2: 3}, nil, 3)
	lead := c.waitLeader(500)
	if lead == nil {
		t.Fatal("no leader")
	}
	kept := false
	for _, n := range c.nodes {
		if n.id == lead.id {
			continue
		}
		if !kept {
			kept = true
			continue
		}
		c.Crash(n.id)
	}
	lead.Submit(types.Value("stuck"))
	c.Run(300)
	if lead.CommitFrontier() >= 1 {
		t.Fatal("majority quorum committed with only 2 live nodes?!")
	}
}

func TestLeaderChangeRecoversSmallQuorumCommits(t *testing.T) {
	// The FPaxos safety argument: a value committed by Q2=2 must be
	// found by any new leader's Q1=4 phase-1 quorum (4+2 > 5).
	c := newCluster(t, quorum.Flexible{N: 5, Q1: 4, Q2: 2}, nil, 4)
	lead := c.waitLeader(500)
	if lead == nil {
		t.Fatal("no leader")
	}
	lead.Submit(types.Value("precious"))
	if !c.RunUntil(func() bool { return lead.CommitFrontier() >= 1 }, 200) {
		t.Fatal("no commit")
	}
	c.Crash(lead.id)
	var next *Node
	ok := c.RunUntil(func() bool {
		for _, n := range c.nodes {
			if n.IsLeader() && !c.Crashed(n.id) {
				next = n
				return true
			}
		}
		return false
	}, 3000)
	if !ok {
		t.Fatal("no new leader (Q1=4 needs 4 of the 4 live nodes)")
	}
	if !c.RunUntil(func() bool { return next.CommitFrontier() >= 1 }, 1000) {
		t.Fatal("new leader lost the committed value")
	}
	for _, n := range c.nodes {
		if c.Crashed(n.id) || n.CommitFrontier() < 1 {
			continue
		}
		ds := n.TakeDecisions()
		if len(ds) > 0 && !ds[0].Val.Equal(types.Value("precious")) {
			t.Fatalf("node %v slot 1 = %q", n.id, ds[0].Val)
		}
	}
}

func TestReplicationCheaperWithSmallQ2(t *testing.T) {
	// Messages to commit shrink as Q2 shrinks — F3's claim. The win is
	// in *wait cost* (how many responses gate the commit); measure
	// commit latency under a straggler instead of raw counts.
	latency := func(q2 int) int {
		q := quorum.Flexible{N: 5, Q1: 5 - q2 + 1, Q2: q2}
		fab := simnet.NewFabric(simnet.Options{Seed: 9})
		c := newCluster(t, q, fab, 9)
		lead := c.waitLeader(500)
		if lead == nil {
			t.Fatal("no leader")
		}
		// Make three acceptors slow: Q2=2 (leader + 1 fast) dodges them,
		// Q2=3 (leader + 2) must wait for a straggler.
		slow := 0
		for _, n := range c.nodes {
			if n.id != lead.id && slow < 3 {
				fab.SetLinkDelay(lead.id, n.id, 40, 50)
				fab.SetLinkDelay(n.id, lead.id, 40, 50)
				slow++
			}
		}
		start := c.Now()
		before := lead.CommitFrontier()
		lead.Submit(types.Value("probe"))
		c.RunUntil(func() bool { return lead.CommitFrontier() > before }, 500)
		return c.Now() - start
	}
	fast, slowQ := latency(2), latency(3)
	if fast >= slowQ {
		t.Fatalf("small Q2 (%d ticks) not faster than majority (%d ticks) under stragglers", fast, slowQ)
	}
}

func TestChaosNoDivergence(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 5, DropRate: 0.08, Seed: seed})
		c := newCluster(t, quorum.Flexible{N: 5, Q1: 4, Q2: 2}, fab, seed)
		rng := simnet.NewRNG(seed + 77)
		for i := 0; i < 20; i++ {
			target := c.nodes[rng.Intn(5)]
			if !c.Crashed(target.id) {
				target.Submit(types.Value{byte(i)})
			}
			c.Run(50)
			victim := types.NodeID(rng.Intn(5))
			if c.Crashed(victim) {
				c.Restart(victim)
			} else if rng.Bool(0.2) && live(c) > 4 {
				c.Crash(victim) // Q1=4 needs 4 live: keep ≥4
			}
			// The learn() panic is the divergence detector; also check
			// chosen maps agree pairwise.
			for i := 0; i < len(c.nodes); i++ {
				for j := i + 1; j < len(c.nodes); j++ {
					a, b := c.nodes[i], c.nodes[j]
					for s, va := range a.chosen {
						if vb, ok := b.chosen[s]; ok && !va.Equal(vb) {
							t.Fatalf("seed %d: slot %d diverged", seed, s)
						}
					}
				}
			}
		}
	}
}

func live(c *cluster) int {
	n := 0
	for _, node := range c.nodes {
		if !c.Crashed(node.id) {
			n++
		}
	}
	return n
}
