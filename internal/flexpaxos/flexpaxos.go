// Package flexpaxos implements Flexible Paxos (Howard, Malkhi &
// Spiegelman, OPODIS 2016) as the paper presents it: "it is not
// necessary to require all quorums in Paxos to intersect" — only
// leader-election (phase 1) quorums and replication (phase 2) quorums
// must intersect, so Q1 + Q2 > N. Replication quorums can shrink
// arbitrarily as long as leader-election quorums grow to compensate,
// trading rare leader-change cost for cheap steady-state commits, with
// *no changes to the Paxos message flow*.
//
// The implementation is a multi-slot Paxos parameterized by a
// quorum.Flexible system: phase 1 tallies to Q1, phase 2 tallies to Q2.
// Setting Q1 = Q2 = majority recovers classic Multi-Paxos.
//
// Profile: partially-synchronous, crash, pessimistic, known, 2f+1 nodes
// (f now bounded by min(N−Q1, N−Q2)), 2 phases, O(N).
package flexpaxos

import (
	"fmt"
	"fortyconsensus/internal/core"
	"fortyconsensus/internal/det"
	"fortyconsensus/internal/quorum"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

func init() {
	core.Register(core.Profile{
		Name:                 "flexpaxos",
		Synchrony:            core.PartiallySynchronous,
		Failure:              core.Crash,
		Strategy:             core.Pessimistic,
		Awareness:            core.KnownParticipants,
		NodesFor:             func(f int) int { return quorum.MajorityFor(f).Size() },
		NodesFormula:         "2f+1 (Q1+Q2 > N)",
		QuorumFor:            func(f int) int { return f + 1 },
		CommitPhases:         1,
		AltPhases:            2,
		Complexity:           core.Linear,
		ViewChangeComplexity: core.Linear,
		Decomposition: []core.Phase{
			core.LeaderElection, core.ValueDiscovery, core.FTAgreement, core.Decision,
		},
		Notes: "decoupled election/replication quorums; smaller Q2 ⇒ cheaper commits",
	})
}

// MsgKind enumerates Flexible Paxos message types (identical flow to
// Multi-Paxos — the point of the paper).
type MsgKind uint8

const (
	MsgPrepare MsgKind = iota + 1
	MsgAck
	MsgNack
	MsgAccept
	MsgAccepted
	MsgCommit
	MsgSubmit
)

func (k MsgKind) String() string {
	switch k {
	case MsgPrepare:
		return "prepare"
	case MsgAck:
		return "ack"
	case MsgNack:
		return "nack"
	case MsgAccept:
		return "accept"
	case MsgAccepted:
		return "accepted"
	case MsgCommit:
		return "commit"
	case MsgSubmit:
		return "submit"
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Entry reports an accepted slot during recovery.
type Entry struct {
	Slot      types.Seq
	AcceptNum types.Ballot
	Val       types.Value
}

// Message is a Flexible Paxos wire message.
type Message struct {
	Kind     MsgKind
	From, To types.NodeID
	Ballot   types.Ballot
	Slot     types.Seq
	Val      types.Value
	Entries  []Entry
}

// Runner accessors.
func Src(m Message) types.NodeID  { return m.From }
func Dest(m Message) types.NodeID { return m.To }
func Kind(m Message) string       { return m.Kind.String() }

// Config fixes the quorum system.
type Config struct {
	Quorums quorum.Flexible
	// ElectionTimeoutTicks is the follower timeout base. Default 30.
	ElectionTimeoutTicks int
	// HeartbeatTicks is the leader heartbeat... Flexible Paxos keeps
	// the Paxos flow, so the commit broadcast doubles as liveness; a
	// dedicated heartbeat rides on empty Accept messages. Default 8.
	HeartbeatTicks int
	// Seed seeds per-node jitter.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if !c.Quorums.Valid() {
		return c, fmt.Errorf("flexpaxos: invalid quorum system %s", c.Quorums.Describe())
	}
	if c.ElectionTimeoutTicks <= 0 {
		c.ElectionTimeoutTicks = 30
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 8
	}
	return c, nil
}

type role uint8

const (
	follower role = iota
	candidate
	leader
)

type slotState struct {
	val   types.Value
	votes *quorum.Tally
}

type acceptedEntry struct {
	num types.Ballot
	val types.Value
}

// Node is one Flexible Paxos replica.
type Node struct {
	id  types.NodeID
	cfg Config
	rng *simnet.RNG

	role   role
	ballot types.Ballot
	lead   types.NodeID

	accepted  map[types.Seq]acceptedEntry
	chosen    map[types.Seq]types.Value
	commitSeq types.Seq
	decisions []types.Decision

	curBallot types.Ballot
	prepAcks  *quorum.Tally
	recovered map[types.Seq]acceptedEntry
	inflight  map[types.Seq]*slotState
	nextSlot  types.Seq
	queued    []types.Value

	electionIn int
	hbIn       int
	elections  int

	out []Message
}

// New builds a replica; it returns an error for invalid quorum systems
// (Q1+Q2 ≤ N), which would lose committed values on leader change.
func New(id types.NodeID, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:       id,
		cfg:      cfg,
		rng:      simnet.NewRNG(cfg.Seed ^ (uint64(id)+3)<<18),
		lead:     -1,
		accepted: make(map[types.Seq]acceptedEntry),
		chosen:   make(map[types.Seq]types.Value),
		nextSlot: 1,
	}
	n.resetTimer()
	return n, nil
}

func (n *Node) resetTimer() {
	n.electionIn = n.cfg.ElectionTimeoutTicks + n.rng.Intn(n.cfg.ElectionTimeoutTicks)
}

func (n *Node) send(m Message) {
	m.From = n.id
	n.out = append(n.out, m)
}

func (n *Node) broadcast(m Message) {
	for i := 0; i < n.cfg.Quorums.N; i++ {
		if types.NodeID(i) == n.id {
			continue
		}
		mm := m
		mm.To = types.NodeID(i)
		n.send(mm)
	}
}

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.id }

// IsLeader reports whether this node leads.
func (n *Node) IsLeader() bool { return n.role == leader }

// Elections returns how many elections this node started.
func (n *Node) Elections() int { return n.elections }

// CommitFrontier returns the contiguous commit frontier.
func (n *Node) CommitFrontier() types.Seq { return n.commitSeq }

// TakeDecisions drains committed decisions in order.
func (n *Node) TakeDecisions() []types.Decision {
	d := n.decisions
	n.decisions = nil
	return d
}

// Submit hands a value to the cluster via this node.
func (n *Node) Submit(v types.Value) {
	switch {
	case n.role == leader:
		n.propose(v)
	case n.lead >= 0 && n.lead != n.id:
		n.send(Message{Kind: MsgSubmit, To: n.lead, Val: v.Clone()})
	default:
		n.queued = append(n.queued, v.Clone())
	}
}

func (n *Node) propose(v types.Value) {
	slot := n.nextSlot
	n.nextSlot++
	st := &slotState{val: v.Clone(), votes: quorum.NewTally(n.cfg.Quorums.Threshold())}
	n.inflight[slot] = st
	n.accepted[slot] = acceptedEntry{num: n.curBallot, val: v.Clone()}
	st.votes.Add(n.id)
	n.broadcast(Message{Kind: MsgAccept, Ballot: n.curBallot, Slot: slot, Val: v.Clone()})
	n.checkSlot(slot, st)
}

func (n *Node) campaign() {
	n.elections++
	n.role = candidate
	n.ballot = n.ballot.Next(n.id)
	n.curBallot = n.ballot
	// Phase 1 needs the *large* quorum Q1.
	n.prepAcks = quorum.NewTally(n.cfg.Quorums.Phase1())
	n.recovered = make(map[types.Seq]acceptedEntry)
	for s, e := range n.accepted {
		n.recovered[s] = e
	}
	n.prepAcks.Add(n.id)
	n.resetTimer()
	n.broadcast(Message{Kind: MsgPrepare, Ballot: n.curBallot})
	if n.prepAcks.Reached() {
		n.becomeLeader()
	}
}

// Step consumes one delivered message.
func (n *Node) Step(m Message) {
	switch m.Kind {
	case MsgPrepare:
		n.onPrepare(m)
	case MsgAck:
		n.onAck(m)
	case MsgNack:
		if n.ballot.Less(m.Ballot) {
			n.ballot = m.Ballot
			n.role = follower
			n.lead = -1
			n.resetTimer()
		}
	case MsgAccept:
		n.onAccept(m)
	case MsgAccepted:
		n.onAccepted(m)
	case MsgCommit:
		n.learn(m.Slot, m.Val)
	case MsgSubmit:
		if n.role == leader {
			n.propose(m.Val)
		} else if n.lead >= 0 && n.lead != n.id {
			n.send(Message{Kind: MsgSubmit, To: n.lead, Val: m.Val})
		} else {
			n.queued = append(n.queued, m.Val.Clone())
		}
	}
}

func (n *Node) onPrepare(m Message) {
	if n.ballot.LessEq(m.Ballot) {
		n.ballot = m.Ballot
		n.role = follower
		n.lead = m.From
		n.resetTimer()
		// Report the FULL accepted log, not just the uncommitted tail: a
		// new leader may lag behind the commit frontier, and a slot
		// chosen by a small Q2 quorum is only guaranteed visible through
		// the accepted entry of some Q1∩Q2 intersection node.
		entries := make([]Entry, 0, len(n.accepted))
		for _, s := range det.SortedKeys(n.accepted) {
			e := n.accepted[s]
			entries = append(entries, Entry{Slot: s, AcceptNum: e.num, Val: e.val.Clone()})
		}
		n.send(Message{Kind: MsgAck, To: m.From, Ballot: m.Ballot, Entries: entries})
		return
	}
	n.send(Message{Kind: MsgNack, To: m.From, Ballot: n.ballot})
}

func (n *Node) onAck(m Message) {
	if n.role != candidate || m.Ballot != n.curBallot {
		return
	}
	for _, e := range m.Entries {
		if cur, ok := n.recovered[e.Slot]; !ok || cur.num.Less(e.AcceptNum) {
			n.recovered[e.Slot] = acceptedEntry{num: e.AcceptNum, val: e.Val.Clone()}
		}
	}
	if n.prepAcks.Add(m.From) {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	if n.role == leader {
		return
	}
	n.role = leader
	n.lead = n.id
	n.inflight = make(map[types.Seq]*slotState)
	n.nextSlot = n.commitSeq + 1
	slots := make([]types.Seq, 0, len(n.recovered))
	for _, s := range det.SortedKeys(n.recovered) {
		if s > n.commitSeq {
			slots = append(slots, s)
		}
	}
	for _, s := range slots {
		if s >= n.nextSlot {
			n.nextSlot = s + 1
		}
	}
	for s := n.commitSeq + 1; s < n.nextSlot; s++ {
		e, ok := n.recovered[s]
		if !ok {
			e = acceptedEntry{}
		}
		st := &slotState{val: e.val.Clone(), votes: quorum.NewTally(n.cfg.Quorums.Threshold())}
		n.inflight[s] = st
		n.accepted[s] = acceptedEntry{num: n.curBallot, val: e.val.Clone()}
		st.votes.Add(n.id)
		n.broadcast(Message{Kind: MsgAccept, Ballot: n.curBallot, Slot: s, Val: e.val.Clone()})
		n.checkSlot(s, st)
	}
	queued := n.queued
	n.queued = nil
	for _, v := range queued {
		n.propose(v)
	}
	n.hbIn = 0
}

func (n *Node) onAccept(m Message) {
	if n.ballot.LessEq(m.Ballot) {
		n.ballot = m.Ballot
		n.role = follower
		n.lead = m.From
		n.resetTimer()
		if m.Slot == 0 { // heartbeat
			return
		}
		n.accepted[m.Slot] = acceptedEntry{num: m.Ballot, val: m.Val.Clone()}
		n.send(Message{Kind: MsgAccepted, To: m.From, Ballot: m.Ballot, Slot: m.Slot})
		return
	}
	n.send(Message{Kind: MsgNack, To: m.From, Ballot: n.ballot})
}

func (n *Node) onAccepted(m Message) {
	if n.role != leader || m.Ballot != n.curBallot {
		return
	}
	st, ok := n.inflight[m.Slot]
	if !ok {
		return
	}
	st.votes.Add(m.From)
	n.checkSlot(m.Slot, st)
}

func (n *Node) checkSlot(slot types.Seq, st *slotState) {
	if !st.votes.Reached() {
		return
	}
	delete(n.inflight, slot)
	n.learn(slot, st.val)
	n.broadcast(Message{Kind: MsgCommit, Slot: slot, Val: st.val.Clone()})
}

func (n *Node) learn(slot types.Seq, val types.Value) {
	if prev, ok := n.chosen[slot]; ok {
		if !prev.Equal(val) {
			panic(fmt.Sprintf("flexpaxos: node %v slot %d chosen twice: %q vs %q", n.id, slot, prev, val))
		}
		return
	}
	n.chosen[slot] = val.Clone()
	for {
		v, ok := n.chosen[n.commitSeq+1]
		if !ok {
			return
		}
		n.commitSeq++
		n.decisions = append(n.decisions, types.Decision{Slot: n.commitSeq, Val: v})
	}
}

// Tick drives elections and leader heartbeats.
func (n *Node) Tick() {
	if n.role == leader {
		n.hbIn--
		if n.hbIn <= 0 {
			n.hbIn = n.cfg.HeartbeatTicks
			n.broadcast(Message{Kind: MsgAccept, Ballot: n.curBallot, Slot: 0})
		}
		return
	}
	n.electionIn--
	if n.electionIn <= 0 {
		n.campaign()
	}
}

// Drain returns pending outbound messages.
func (n *Node) Drain() []Message {
	out := n.out
	n.out = nil
	return out
}
