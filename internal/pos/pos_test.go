package pos

import (
	"math"
	"testing"

	"fortyconsensus/internal/runner"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

func stakes3() map[types.NodeID]uint64 {
	return map[types.NodeID]uint64{0: 600, 1: 300, 2: 100}
}

func TestProposerDeterministic(t *testing.T) {
	a := NewLedger(Params{Seed: 42}, stakes3())
	b := NewLedger(Params{Seed: 42}, stakes3())
	for slot := uint64(1); slot <= 100; slot++ {
		pa, oka := a.ProposerFor(slot)
		pb, okb := b.ProposerFor(slot)
		if pa != pb || oka != okb {
			t.Fatalf("slot %d: %v/%v vs %v/%v", slot, pa, oka, pb, okb)
		}
	}
}

func TestBlockShareTracksStakeShare(t *testing.T) {
	// "A stakeholder who has p fraction of the coins creates a new block
	// with p probability": 60/30/10 stakes should win ≈60/30/10% of
	// blocks under randomized selection.
	l := NewLedger(Params{Seed: 7, Reward: 0}, stakes3()) // reward 0 isolates the base rule
	const slots = 5000
	for i := 0; i < slots; i++ {
		if _, ok := l.Advance(nil); !ok {
			t.Fatal("empty slot with positive stakes")
		}
	}
	wins := l.Wins()
	for id, wantFrac := range map[types.NodeID]float64{0: 0.6, 1: 0.3, 2: 0.1} {
		got := float64(wins[id]) / slots
		if math.Abs(got-wantFrac) > 0.05 {
			t.Fatalf("validator %v: block share %.3f, stake share %.3f", id, got, wantFrac)
		}
	}
}

func TestRewardZeroKeepsSharesStable(t *testing.T) {
	l := NewLedger(Params{Seed: 7, Reward: 0}, stakes3())
	before := l.TotalStake()
	for i := 0; i < 100; i++ {
		l.Advance(nil)
	}
	if l.TotalStake() != before {
		t.Fatal("zero-reward ledger changed total stake")
	}
}

func TestProportionalRewardsAreMartingale(t *testing.T) {
	// The slide asks "don't the rich get richer?" — under pure
	// stake-proportional selection the whale's *absolute* stake grows
	// with compounding rewards, but its expected *share* stays constant
	// (each slot pays out in proportion to the win probability). Verify
	// both: stake grows, share stays within a narrow band.
	l := NewLedger(Params{Seed: 9, Reward: 5}, stakes3())
	startStake := l.Stake(0)
	startShare := float64(l.Stake(0)) / float64(l.TotalStake())
	for i := 0; i < 3000; i++ {
		l.Advance(nil)
	}
	if l.Stake(0) <= startStake {
		t.Fatal("whale stake did not grow despite rewards")
	}
	endShare := float64(l.Stake(0)) / float64(l.TotalStake())
	if math.Abs(endShare-startShare) > 0.08 {
		t.Fatalf("share drifted beyond martingale band: %.3f -> %.3f", startShare, endShare)
	}
}

func TestCoinAgeBoostsDormantHolders(t *testing.T) {
	// Coin-age gives small holders a win rate above their raw stake
	// share, because age accumulates while they wait and resets for
	// frequent winners.
	const slots = 5000
	share := func(sel Selection) float64 {
		l := NewLedger(Params{Seed: 11, Selection: sel, Reward: 0}, stakes3())
		for i := 0; i < slots; i++ {
			l.Advance(nil)
		}
		return float64(l.Wins()[2]) / slots // the 10% holder
	}
	random, aged := share(Randomized), share(CoinAge)
	if aged <= random {
		t.Fatalf("coin-age did not help the small holder: random=%.3f aged=%.3f", random, aged)
	}
}

func TestCoinAgeMinimumDormancy(t *testing.T) {
	// A validator that just won has age 0 < MinAge and weight 0.
	l := NewLedger(Params{Selection: CoinAge, Seed: 3, MinAge: 5}, stakes3())
	b, ok := l.Advance(nil)
	if !ok {
		t.Fatal("no block")
	}
	winner := l.byID[b.Proposer]
	if w := l.weight(winner); w != 0 {
		t.Fatalf("fresh winner has weight %d, want 0", w)
	}
}

func TestVerifyAndApplyRejectsIllegitimateProposer(t *testing.T) {
	l := NewLedger(Params{Seed: 5}, stakes3())
	id, _ := l.ProposerFor(1)
	wrong := types.NodeID((int(id) + 1) % 3)
	b := Block{Slot: 1, Proposer: wrong, Parent: l.Tip()}
	if err := l.VerifyAndApply(b); err == nil {
		t.Fatal("illegitimate proposer accepted")
	}
	good := Block{Slot: 1, Proposer: id, Parent: l.Tip()}
	if err := l.VerifyAndApply(good); err != nil {
		t.Fatal(err)
	}
	// Wrong slot and wrong parent also rejected.
	if err := l.VerifyAndApply(Block{Slot: 5, Proposer: id}); err == nil {
		t.Fatal("slot gap accepted")
	}
	id2, _ := l.ProposerFor(2)
	if err := l.VerifyAndApply(Block{Slot: 2, Proposer: id2}); err == nil {
		t.Fatal("wrong parent accepted")
	}
}

func TestNetworkedValidatorsConverge(t *testing.T) {
	stakes := stakes3()
	peers := []types.NodeID{0, 1, 2}
	rc := runner.New(runner.Config[Message]{
		Fabric: simnet.NewFabric(simnet.Options{Seed: 1}),
		Dest:   Dest, Src: Src, Kind: Kind,
	})
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = NewNode(types.NodeID(i), Params{Seed: 21}, stakes, peers, 5)
		rc.Add(types.NodeID(i), nodes[i])
	}
	nodes[0].Submit(types.Value("tx-1"))
	rc.Run(600)
	h := nodes[0].Ledger().Height()
	if h < 50 {
		t.Fatalf("chain only reached height %d", h)
	}
	for _, n := range nodes[1:] {
		if n.Ledger().Height() < h-2 {
			t.Fatalf("validator lagging: %d vs %d", n.Ledger().Height(), h)
		}
		// Same tip prefix ⇒ same stake evolution.
		if n.Ledger().Stake(0) != nodes[0].Ledger().Stake(0) &&
			absDiff(n.Ledger().Height(), nodes[0].Ledger().Height()) == 0 {
			t.Fatal("stake tables diverged at equal height")
		}
	}
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

func TestNetworkedForgeryRejected(t *testing.T) {
	// A validator forging blocks for slots it did not win is ignored.
	stakes := stakes3()
	peers := []types.NodeID{0, 1, 2}
	rc := runner.New(runner.Config[Message]{
		Fabric: simnet.NewFabric(simnet.Options{Seed: 2}),
		Dest:   Dest, Src: Src, Kind: Kind,
	})
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = NewNode(types.NodeID(i), Params{Seed: 33}, stakes, peers, 5)
		rc.Add(types.NodeID(i), nodes[i])
	}
	// Node 2 claims every slot regardless of selection.
	rc.Intercept(2, func(m Message) []Message {
		m.Block.Proposer = 2
		return []Message{m}
	})
	rc.Run(400)
	wins := nodes[0].Ledger().Wins()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total == 0 {
		t.Fatal("chain never advanced")
	}
	// Node 2's legitimate share is ~10%; forgeries must not inflate it.
	if frac := float64(wins[2]) / float64(total); frac > 0.3 {
		t.Fatalf("forger won %.2f of blocks", frac)
	}
}
