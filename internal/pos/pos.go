// Package pos implements Proof-of-Stake consensus as the paper presents
// it: "a stakeholder who has p fraction of the coins in circulation
// creates a new block with p probability", plus the two anti-plutocracy
// refinements the slides list —
//
//	randomized block selection: a seeded pseudo-random beacon combined
//	with stake size picks each slot's proposer;
//
//	coin-age-based selection: weight = stake × age (slots since the
//	stake last won), with age capped (the slides' "maximum after 90
//	days") and reset to zero on winning, so dormant smaller holders
//	catch up.
//
// Experiment F8 measures block share versus stake share under both
// rules — the "don't the rich get richer?" slide, answered with data.
//
// The protocol is slot-synchronous: every slot, each validator evaluates
// the public selection function; the winner signs and broadcasts a
// block; everyone can verify the winner was legitimate because the
// selection depends only on the shared stake table, the beacon seed,
// and the slot number.
package pos

import (
	"fmt"

	"fortyconsensus/internal/chaincrypto"
	"fortyconsensus/internal/core"
	"fortyconsensus/internal/det"
	"fortyconsensus/internal/quorum"
	"fortyconsensus/internal/types"
)

func init() {
	core.Register(core.Profile{
		Name:         "pos",
		Synchrony:    core.PartiallySynchronous,
		Failure:      core.Byzantine,
		Strategy:     core.Optimistic,
		Awareness:    core.UnknownParticipants,
		NodesFor:     func(f int) int { return quorum.MajorityFor(f).Size() }, // honest-majority of stake
		NodesFormula: "majority of stake",
		QuorumFor:    func(f int) int { return f + 1 },
		CommitPhases: 1,
		Complexity:   core.Linear,
		Decomposition: []core.Phase{
			core.LeaderElection, core.Decision,
		},
		Notes: "stake-weighted randomized or coin-age proposer selection",
	})
}

// Selection picks how proposers are chosen.
type Selection uint8

const (
	// Randomized weights proposers purely by stake.
	Randomized Selection = iota
	// CoinAge weights by stake × capped age, resetting age on a win.
	CoinAge
)

func (s Selection) String() string {
	if s == CoinAge {
		return "coin-age"
	}
	return "randomized"
}

// Params configures a PoS network.
type Params struct {
	Selection Selection
	// Seed seeds the public beacon.
	Seed uint64
	// MaxAge caps coin-age weighting (the "90 days" rule). Default 90.
	MaxAge uint64
	// MinAge is the dormancy before stake competes ("unspent for at
	// least 30 days"). Default 0 for randomized, 3 for coin-age.
	MinAge uint64
	// Reward is the per-block stake reward; zero is a valid choice and
	// isolates the selection rule from compounding.
	Reward uint64
}

func (p Params) withDefaults() Params {
	if p.MaxAge == 0 {
		p.MaxAge = 90
	}
	if p.MinAge == 0 && p.Selection == CoinAge {
		p.MinAge = 3
	}
	return p
}

// Validator is one stakeholder in the shared stake table.
type Validator struct {
	ID    types.NodeID
	Stake uint64
	// age counts slots since this validator last proposed.
	age uint64
}

// Block is one PoS block.
type Block struct {
	Slot     uint64
	Proposer types.NodeID
	Parent   chaincrypto.Digest
	Payload  []types.Value
}

// Hash returns the block digest.
func (b Block) Hash() chaincrypto.Digest {
	parts := [][]byte{
		chaincrypto.HashUint64(b.Slot),
		chaincrypto.HashUint64(uint64(b.Proposer)),
		b.Parent[:],
	}
	for _, v := range b.Payload {
		parts = append(parts, v)
	}
	return chaincrypto.Hash(parts...)
}

// Ledger is the deterministic slot-by-slot PoS state machine: the stake
// table, the beacon, and the chain. Every validator computes the same
// ledger, so the networked layer only needs block dissemination — the
// selection itself requires no votes.
type Ledger struct {
	params Params
	vals   []*Validator
	byID   map[types.NodeID]*Validator
	chain  []Block
	tipID  chaincrypto.Digest
	wins   map[types.NodeID]int
}

// NewLedger builds a ledger over the given initial stakes.
func NewLedger(params Params, stakes map[types.NodeID]uint64) *Ledger {
	params = params.withDefaults()
	l := &Ledger{
		params: params,
		byID:   make(map[types.NodeID]*Validator, len(stakes)),
		wins:   make(map[types.NodeID]int),
	}
	for _, id := range det.SortedKeys(stakes) {
		v := &Validator{ID: id, Stake: stakes[id], age: params.MinAge}
		l.vals = append(l.vals, v)
		l.byID[id] = v
	}
	return l
}

// weight returns a validator's current selection weight.
func (l *Ledger) weight(v *Validator) uint64 {
	switch l.params.Selection {
	case CoinAge:
		age := v.age
		if age < l.params.MinAge {
			return 0
		}
		if age > l.params.MaxAge {
			age = l.params.MaxAge
		}
		return v.Stake * age
	case Randomized:
		return v.Stake
	}
	return v.Stake
}

// beacon derives slot randomness from the seed and slot number.
func (l *Ledger) beacon(slot uint64) uint64 {
	d := chaincrypto.Hash(chaincrypto.HashUint64(l.params.Seed), chaincrypto.HashUint64(slot))
	var out uint64
	for i := 0; i < 8; i++ {
		out = out<<8 | uint64(d[i])
	}
	return out
}

// ProposerFor returns the slot's legitimate proposer: sample the beacon
// against cumulative weights. With zero total weight (all dormant), the
// slot is empty and no block may be produced.
func (l *Ledger) ProposerFor(slot uint64) (types.NodeID, bool) {
	total := uint64(0)
	for _, v := range l.vals {
		total += l.weight(v)
	}
	if total == 0 {
		return 0, false
	}
	pick := l.beacon(slot) % total
	acc := uint64(0)
	for _, v := range l.vals {
		acc += l.weight(v)
		if pick < acc {
			return v.ID, true
		}
	}
	return l.vals[len(l.vals)-1].ID, true
}

// Advance plays one slot: selects the proposer, appends its block, pays
// the reward, and updates ages. payload may be nil.
func (l *Ledger) Advance(payload []types.Value) (Block, bool) {
	slot := uint64(len(l.chain)) + 1
	id, ok := l.ProposerFor(slot)
	// Ages advance for everyone each slot.
	for _, v := range l.vals {
		v.age++
	}
	if !ok {
		return Block{}, false
	}
	// The caller keeps ownership of payload; the block must not retain
	// its backing array.
	b := Block{Slot: slot, Proposer: id, Parent: l.tipID, Payload: append([]types.Value(nil), payload...)}
	l.apply(b)
	return b, true
}

// VerifyAndApply checks that a received block names the legitimate
// proposer for its slot and extends the tip, then applies it. Used by
// networked validators replaying a peer's block.
func (l *Ledger) VerifyAndApply(b Block) error {
	want := uint64(len(l.chain)) + 1
	if b.Slot != want {
		return fmt.Errorf("pos: block for slot %d, want %d", b.Slot, want)
	}
	if b.Parent != l.tipID {
		return fmt.Errorf("pos: block does not extend the tip")
	}
	id, ok := l.ProposerFor(b.Slot)
	if !ok || id != b.Proposer {
		return fmt.Errorf("pos: illegitimate proposer %v for slot %d (want %v)", b.Proposer, b.Slot, id)
	}
	for _, v := range l.vals {
		v.age++
	}
	l.apply(b)
	return nil
}

func (l *Ledger) apply(b Block) {
	l.chain = append(l.chain, b)
	l.tipID = b.Hash()
	v := l.byID[b.Proposer]
	v.Stake += l.params.Reward
	v.age = 0
	l.wins[b.Proposer]++
}

// Height returns the chain length.
func (l *Ledger) Height() int { return len(l.chain) }

// Wins returns per-validator block counts.
func (l *Ledger) Wins() map[types.NodeID]int {
	out := make(map[types.NodeID]int, len(l.wins))
	for k, v := range l.wins {
		out[k] = v
	}
	return out
}

// Stake returns a validator's current stake.
func (l *Ledger) Stake(id types.NodeID) uint64 { return l.byID[id].Stake }

// TotalStake returns the sum of all stakes.
func (l *Ledger) TotalStake() uint64 {
	t := uint64(0)
	for _, v := range l.vals {
		t += v.Stake
	}
	return t
}

// Tip returns the tip hash.
func (l *Ledger) Tip() chaincrypto.Digest { return l.tipID }

// ---------------------------------------------------------------------------
// Networked validator (gossip layer over the deterministic ledger)

// MsgKind enumerates PoS gossip messages.
type MsgKind uint8

const (
	MsgBlock MsgKind = iota + 1
)

func (k MsgKind) String() string { return "block" }

// Message is a PoS wire message.
type Message struct {
	Kind     MsgKind
	From, To types.NodeID
	Block    Block
}

// Runner accessors.
func Src(m Message) types.NodeID  { return m.From }
func Dest(m Message) types.NodeID { return m.To }
func Kind(m Message) string       { return m.Kind.String() }

// Node is one networked validator: each slot lasts SlotTicks; the slot's
// proposer builds a block and gossips it; everyone else verifies.
type Node struct {
	id        types.NodeID
	ledger    *Ledger
	peers     []types.NodeID
	slotTicks int
	tickIn    int
	pending   []types.Value
	held      map[uint64]Block // blocks for future slots
	out       []Message
}

// NewNode builds a networked validator sharing the given parameters and
// stake table with its peers.
func NewNode(id types.NodeID, params Params, stakes map[types.NodeID]uint64, peers []types.NodeID, slotTicks int) *Node {
	if slotTicks <= 0 {
		slotTicks = 5
	}
	return &Node{
		id:        id,
		ledger:    NewLedger(params, stakes),
		peers:     peers,
		slotTicks: slotTicks,
		tickIn:    slotTicks,
		held:      make(map[uint64]Block),
	}
}

// Ledger exposes the node's ledger for assertions.
func (n *Node) Ledger() *Ledger { return n.ledger }

// Submit queues a payload for the node's next proposed block.
func (n *Node) Submit(v types.Value) { n.pending = append(n.pending, v.Clone()) }

// Step consumes a gossiped block.
func (n *Node) Step(m Message) {
	if m.Kind != MsgBlock {
		return
	}
	n.tryApply(m.Block)
}

func (n *Node) tryApply(b Block) {
	want := uint64(n.ledger.Height()) + 1
	if b.Slot < want {
		return // already have it
	}
	if b.Slot > want {
		n.held[b.Slot] = b
		return
	}
	if err := n.ledger.VerifyAndApply(b); err != nil {
		return
	}
	for {
		next, ok := n.held[uint64(n.ledger.Height())+1]
		if !ok {
			return
		}
		delete(n.held, next.Slot)
		if n.ledger.VerifyAndApply(next) != nil {
			return
		}
	}
}

// Tick advances slot time; at each slot boundary the legitimate proposer
// (and only it) produces the block.
func (n *Node) Tick() {
	n.tickIn--
	if n.tickIn > 0 {
		return
	}
	n.tickIn = n.slotTicks
	slot := uint64(n.ledger.Height()) + 1
	id, ok := n.ledger.ProposerFor(slot)
	if !ok || id != n.id {
		return
	}
	payload := n.pending
	n.pending = nil
	b, produced := n.ledger.Advance(payload)
	if !produced {
		return
	}
	for _, p := range n.peers {
		if p != n.id {
			n.out = append(n.out, Message{Kind: MsgBlock, From: n.id, To: p, Block: b})
		}
	}
}

// Drain returns pending outbound messages.
func (n *Node) Drain() []Message {
	out := n.out
	n.out = nil
	return out
}
