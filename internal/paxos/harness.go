package paxos

import (
	"fortyconsensus/internal/runner"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

// Cluster bundles a runner over Paxos nodes for tests, benchmarks, and
// examples.
type Cluster struct {
	*runner.Cluster[Message]
	Nodes []*Node
}

// NewCluster builds n Paxos nodes (IDs 0..n-1) over the given fabric.
// A nil fabric gets simnet defaults. cfg.Peers is filled in.
func NewCluster(n int, fabric *simnet.Fabric, cfg Config) *Cluster {
	peers := make([]types.NodeID, n)
	for i := range peers {
		peers[i] = types.NodeID(i)
	}
	cfg.Peers = peers
	rc := runner.New(runner.Config[Message]{Fabric: fabric, Dest: Dest, Src: Src, Kind: Kind})
	c := &Cluster{Cluster: rc}
	for i := 0; i < n; i++ {
		node := New(types.NodeID(i), cfg)
		c.Nodes = append(c.Nodes, node)
		rc.Add(types.NodeID(i), node)
	}
	return c
}

// AllDecided reports whether every non-crashed node has decided.
func (c *Cluster) AllDecided() bool {
	for _, n := range c.Nodes {
		if c.Crashed(n.id) {
			continue
		}
		if _, ok := n.Decided(); !ok {
			return false
		}
	}
	return true
}

// DecidedValues returns each node's decided value, indexed by node
// position, with nil for nodes that have not decided. (A decided nil
// value cannot occur: proposers never propose nil.)
func (c *Cluster) DecidedValues() []types.Value {
	out := make([]types.Value, len(c.Nodes))
	for i, n := range c.Nodes {
		if d, ok := n.Decided(); ok {
			out[i] = d
		}
	}
	return out
}

// Agreement returns the decided value (nil if no node has decided) and
// whether agreement holds: ok is false only when two nodes decided
// different values — a safety violation. With zero or one decided node,
// ok is vacuously true.
func (c *Cluster) Agreement() (types.Value, bool) {
	var v types.Value
	seen := false
	for _, n := range c.Nodes {
		d, ok := n.Decided()
		if !ok {
			continue
		}
		if !seen {
			v, seen = d, true
			continue
		}
		if !v.Equal(d) {
			return nil, false
		}
	}
	return v, true
}
