package paxos

import (
	"testing"

	"fortyconsensus/internal/types"
)

// BenchmarkDecide measures one full single-decree consensus instance
// (prepare + accept + decide broadcast) on 5 nodes.
func BenchmarkDecide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(5, nil, Config{})
		c.Nodes[0].Propose(types.Value("v"))
		if !c.RunUntil(c.AllDecided, 500) {
			b.Fatal("no decision")
		}
	}
}

// BenchmarkDuelingProposers measures contention resolution with
// randomized backoff — the F1 scenario as a microbenchmark.
func BenchmarkDuelingProposers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(5, nil, Config{RetryTicks: 6, RandomBackoff: true, Seed: uint64(i)})
		c.Nodes[0].Propose(types.Value("L"))
		c.Nodes[4].Propose(types.Value("R"))
		if !c.RunUntil(c.AllDecided, 5000) {
			b.Fatal("livelock")
		}
	}
}
