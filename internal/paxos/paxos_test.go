package paxos

import (
	"testing"

	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

func TestSingleProposerDecides(t *testing.T) {
	c := NewCluster(5, nil, Config{})
	c.Nodes[0].Propose(types.Value("alpha"))
	if !c.RunUntil(c.AllDecided, 500) {
		t.Fatal("cluster never decided")
	}
	v, ok := c.Agreement()
	if !ok || !v.Equal(types.Value("alpha")) {
		t.Fatalf("agreement = %q/%v", v, ok)
	}
}

func TestTwoPhasesOnCleanPath(t *testing.T) {
	// The fact box: 2 phases. With uniform 1-tick delays, commit at the
	// proposer takes prepare(1)+ack(1)+accept(1)+accepted(1) = 4 ticks.
	c := NewCluster(3, nil, Config{})
	c.Nodes[0].Propose(types.Value("v"))
	decidedAt := -1
	c.RunUntil(func() bool {
		if _, ok := c.Nodes[0].Decided(); ok && decidedAt < 0 {
			decidedAt = c.Now()
		}
		return decidedAt >= 0
	}, 100)
	if decidedAt != 5 { // +1 tick for the injected Propose taking effect at tick boundaries
		// The exact constant documents the phase count: 2 round trips.
		t.Fatalf("decided at tick %d, want 5 (2 phases × 2 delays + inject)", decidedAt)
	}
}

func TestCompetingProposersAgree(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 4, Seed: seed})
		c := NewCluster(5, fab, Config{RandomBackoff: true, Seed: seed})
		c.Nodes[0].Propose(types.Value("from-0"))
		c.Nodes[4].Propose(types.Value("from-4"))
		if !c.RunUntil(c.AllDecided, 3000) {
			t.Fatalf("seed %d: livelock not resolved", seed)
		}
		v, ok := c.Agreement()
		if !ok {
			t.Fatalf("seed %d: decided values diverge", seed)
		}
		if !v.Equal(types.Value("from-0")) && !v.Equal(types.Value("from-4")) {
			t.Fatalf("seed %d: decided a value nobody proposed: %q", seed, v)
		}
	}
}

func TestOnlyProposedValueChosen(t *testing.T) {
	// Safety property 1: only a proposed value may be chosen.
	c := NewCluster(3, nil, Config{})
	c.Nodes[1].Propose(types.Value("only"))
	c.RunUntil(c.AllDecided, 500)
	v, _ := c.Agreement()
	if !v.Equal(types.Value("only")) {
		t.Fatalf("chose %q", v)
	}
}

func TestLeaderCrashValueRecovered(t *testing.T) {
	// The slide sequence: leader 0 gets value v accepted by a majority,
	// then crashes. A new proposer must recover v, not its own value.
	c := NewCluster(5, nil, Config{})
	c.Nodes[0].Propose(types.Value("chosen-v"))
	// Run until a majority has accepted (acceptVal set on ≥3 nodes).
	ok := c.RunUntil(func() bool {
		cnt := 0
		for _, n := range c.Nodes {
			if n.acceptVal != nil {
				cnt++
			}
		}
		return cnt >= 3
	}, 200)
	if !ok {
		t.Fatal("majority never accepted")
	}
	c.Crash(0)
	c.Nodes[3].Propose(types.Value("usurper"))
	if !c.RunUntil(func() bool { _, d := c.Nodes[3].Decided(); return d }, 2000) {
		t.Fatal("new proposer never decided")
	}
	v, agreed := c.Agreement()
	if !agreed {
		t.Fatal("divergent decisions")
	}
	if !v.Equal(types.Value("chosen-v")) {
		t.Fatalf("new leader overwrote a possibly-chosen value: %q", v)
	}
}

func TestLeaderCrashBeforeQuorumAllowsNewValue(t *testing.T) {
	// If the first proposer dies before any acceptor accepts, the next
	// proposer's own value wins.
	c := NewCluster(5, nil, Config{})
	c.Crash(0) // crash immediately; its prepares never leave
	c.Nodes[0].Propose(types.Value("ghost"))
	c.Nodes[2].Propose(types.Value("fresh"))
	if !c.RunUntil(func() bool { _, d := c.Nodes[2].Decided(); return d }, 1000) {
		t.Fatal("no decision")
	}
	v, _ := c.Agreement()
	if !v.Equal(types.Value("fresh")) {
		t.Fatalf("decided %q, want fresh", v)
	}
}

func TestMinorityPartitionCannotDecide(t *testing.T) {
	fab := simnet.NewFabric(simnet.Options{})
	c := NewCluster(5, fab, Config{})
	fab.Partition([]types.NodeID{0, 1}, []types.NodeID{2, 3, 4})
	c.Nodes[0].Propose(types.Value("minority"))
	c.Run(500)
	if _, ok := c.Nodes[0].Decided(); ok {
		t.Fatal("minority partition decided")
	}
	// Heal: the proposal completes.
	fab.Heal()
	if !c.RunUntil(c.AllDecided, 2000) {
		t.Fatal("no decision after heal")
	}
}

func TestMajorityPartitionDecides(t *testing.T) {
	fab := simnet.NewFabric(simnet.Options{})
	c := NewCluster(5, fab, Config{})
	fab.Partition([]types.NodeID{0, 1}, []types.NodeID{2, 3, 4})
	c.Nodes[2].Propose(types.Value("majority-side"))
	ok := c.RunUntil(func() bool { _, d := c.Nodes[2].Decided(); return d }, 500)
	if !ok {
		t.Fatal("majority partition could not decide")
	}
}

func TestAcceptorPromiseHolds(t *testing.T) {
	// An acceptor that promised ballot b must reject prepare/accept with
	// smaller ballots.
	n := New(0, Config{Peers: []types.NodeID{0, 1, 2}}.withDefaults())
	n.Step(Message{Kind: MsgPrepare, From: 1, Ballot: types.Ballot{Num: 5, Owner: 1}})
	out := n.Drain()
	if len(out) != 1 || out[0].Kind != MsgAck {
		t.Fatalf("first prepare: %+v", out)
	}
	n.Step(Message{Kind: MsgPrepare, From: 2, Ballot: types.Ballot{Num: 3, Owner: 2}})
	out = n.Drain()
	if len(out) != 1 || out[0].Kind != MsgNack {
		t.Fatalf("stale prepare not nacked: %+v", out)
	}
	n.Step(Message{Kind: MsgAccept, From: 2, Ballot: types.Ballot{Num: 3, Owner: 2}, Val: types.Value("x")})
	out = n.Drain()
	if len(out) != 1 || out[0].Kind != MsgNack {
		t.Fatalf("stale accept not nacked: %+v", out)
	}
	if n.acceptVal != nil {
		t.Fatal("stale accept mutated acceptor state")
	}
}

func TestAckReportsAcceptedValue(t *testing.T) {
	n := New(0, Config{Peers: []types.NodeID{0, 1, 2}}.withDefaults())
	b1 := types.Ballot{Num: 1, Owner: 1}
	n.Step(Message{Kind: MsgAccept, From: 1, Ballot: b1, Val: types.Value("v1")})
	n.Drain()
	b2 := types.Ballot{Num: 2, Owner: 2}
	n.Step(Message{Kind: MsgPrepare, From: 2, Ballot: b2})
	out := n.Drain()
	if len(out) != 1 || out[0].Kind != MsgAck {
		t.Fatalf("prepare: %+v", out)
	}
	if out[0].AcceptNum != b1 || !out[0].Val.Equal(types.Value("v1")) {
		t.Fatalf("ack did not report accepted state: %+v", out[0])
	}
}

func TestSafetyUnderRandomSchedules(t *testing.T) {
	// Agreement must hold under lossy, reordering networks with
	// concurrent proposers and crash/restart — across many seeds.
	for seed := uint64(0); seed < 30; seed++ {
		fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 8, DropRate: 0.15, DupRate: 0.05, Seed: seed})
		c := NewCluster(5, fab, Config{RandomBackoff: true, Seed: seed})
		c.Nodes[0].Propose(types.Value("A"))
		c.Nodes[1].Propose(types.Value("B"))
		c.Nodes[2].Propose(types.Value("C"))
		rng := simnet.NewRNG(seed * 7)
		for i := 0; i < 40; i++ {
			c.Run(50)
			// Random crash/restart of one non-decided node.
			victim := types.NodeID(rng.Intn(5))
			if rng.Bool(0.3) && !c.Crashed(victim) {
				c.Crash(victim)
			} else if c.Crashed(victim) {
				c.Restart(victim)
			}
			if _, ok := c.Agreement(); !ok {
				// Agreement() is only false on divergence.
				t.Fatalf("seed %d: decided values diverged", seed)
			}
		}
	}
}

func TestDecideIsStable(t *testing.T) {
	// Once decided, late messages cannot change the decision (the learn
	// path panics on conflicting decide).
	c := NewCluster(3, nil, Config{})
	c.Nodes[0].Propose(types.Value("stable"))
	c.RunUntil(c.AllDecided, 300)
	n := c.Nodes[1]
	n.Step(Message{Kind: MsgDecide, From: 0, To: 1, Val: types.Value("stable")})
	if v, _ := n.Decided(); !v.Equal(types.Value("stable")) {
		t.Fatal("decision changed")
	}
}

func TestRestartCounting(t *testing.T) {
	c := NewCluster(3, nil, Config{})
	c.Nodes[0].Propose(types.Value("x"))
	c.RunUntil(c.AllDecided, 300)
	if c.Nodes[0].Restarts() != 1 {
		t.Fatalf("clean run restarted %d times", c.Nodes[0].Restarts())
	}
}

func TestDuelingProposersBackoffHelps(t *testing.T) {
	// F1's claim: randomized backoff resolves livelock faster (fewer
	// ballot restarts) than fixed timeouts. Compare totals across seeds.
	total := func(backoff bool) int {
		restarts := 0
		for seed := uint64(0); seed < 10; seed++ {
			fab := simnet.NewFabric(simnet.Options{MinDelay: 1, MaxDelay: 3, Seed: seed})
			c := NewCluster(5, fab, Config{RetryTicks: 6, RandomBackoff: backoff, Seed: seed})
			c.Nodes[0].Propose(types.Value("L"))
			c.Nodes[4].Propose(types.Value("R"))
			c.RunUntil(c.AllDecided, 4000)
			restarts += c.Nodes[0].Restarts() + c.Nodes[4].Restarts()
		}
		return restarts
	}
	fixed, random := total(false), total(true)
	if random >= fixed {
		t.Fatalf("backoff did not help: fixed=%d random=%d", fixed, random)
	}
}

func TestMessageComplexityLinear(t *testing.T) {
	// O(N): messages per decision grow linearly, not quadratically.
	msgs := func(n int) int {
		c := NewCluster(n, nil, Config{})
		c.Nodes[0].Propose(types.Value("v"))
		c.RunUntil(c.AllDecided, 1000)
		return c.Stats().Sent
	}
	m5, m10 := msgs(5), msgs(10)
	if m10 > 3*m5 {
		t.Fatalf("message growth superlinear: n=5→%d, n=10→%d", m5, m10)
	}
}
