// Package paxos implements single-decree Paxos exactly as the paper
// presents it: ballots ⟨num, process id⟩, a prepare phase that joins a
// ballot and reports the latest accepted ⟨AcceptNum, AcceptVal⟩, an
// accept phase proposing the leader's value (or the highest-ballot value
// learned), and an asynchronous decision broadcast.
//
// Profile (the paper's fact box): partially-synchronous, crash faults,
// pessimistic, known participants, 2f+1 nodes, 2 phases, O(N) messages.
//
// Liveness follows the slides too: competing proposers can livelock
// (experiment F1); Config.RandomBackoff enables the slide's remedy —
// "randomized delay before restarting".
package paxos

import (
	"fmt"

	"fortyconsensus/internal/core"
	"fortyconsensus/internal/quorum"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

func init() {
	core.Register(core.Profile{
		Name:                 "paxos",
		Synchrony:            core.PartiallySynchronous,
		Failure:              core.Crash,
		Strategy:             core.Pessimistic,
		Awareness:            core.KnownParticipants,
		NodesFor:             func(f int) int { return quorum.MajorityFor(f).Size() },
		NodesFormula:         "2f+1",
		QuorumFor:            func(f int) int { return f + 1 },
		CommitPhases:         2,
		Complexity:           core.Linear,
		ViewChangeComplexity: core.Linear,
		Decomposition: []core.Phase{
			core.LeaderElection, core.ValueDiscovery, core.FTAgreement, core.Decision,
		},
		Notes: "ballots ⟨num,pid⟩; phase 1 doubles as leader election + value discovery",
	})
}

// MsgKind enumerates Paxos message types.
type MsgKind uint8

const (
	MsgPrepare  MsgKind = iota + 1
	MsgAck              // phase-1b: join ballot, report AcceptNum/AcceptVal
	MsgNack             // ballot too old; carries the newer ballot for backoff
	MsgAccept           // phase-2a: proposal
	MsgAccepted         // phase-2b: vote
	MsgDecide           // learn broadcast
)

func (k MsgKind) String() string {
	switch k {
	case MsgPrepare:
		return "prepare"
	case MsgAck:
		return "ack"
	case MsgNack:
		return "nack"
	case MsgAccept:
		return "accept"
	case MsgAccepted:
		return "accepted"
	case MsgDecide:
		return "decide"
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Message is a Paxos wire message.
type Message struct {
	Kind      MsgKind
	From, To  types.NodeID
	Ballot    types.Ballot
	AcceptNum types.Ballot // in Ack: ballot of the reported accepted value
	Val       types.Value
}

// Kind/Src/Dest accessors for the generic runner.
func Src(m Message) types.NodeID  { return m.From }
func Dest(m Message) types.NodeID { return m.To }
func Kind(m Message) string       { return m.Kind.String() }

// Config tunes a node.
type Config struct {
	// Peers is the full membership, including this node.
	Peers []types.NodeID
	// RetryTicks is the proposer's base timeout before restarting a
	// stalled ballot. Default 20.
	RetryTicks int
	// RandomBackoff adds a random extra delay before restarting — the
	// slides' livelock remedy. Requires Seed.
	RandomBackoff bool
	// MaxBackoffTicks bounds the random extra delay. Default 40.
	MaxBackoffTicks int
	// Seed seeds the node's private RNG (backoff jitter).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.RetryTicks <= 0 {
		c.RetryTicks = 20
	}
	if c.MaxBackoffTicks <= 0 {
		c.MaxBackoffTicks = 40
	}
	return c
}

type proposerPhase uint8

const (
	idle proposerPhase = iota
	preparing
	accepting
	done
)

// Node is one Paxos process, playing proposer, acceptor, and learner.
// It is a deterministic state machine driven by the runner.
type Node struct {
	id  types.NodeID
	cfg Config
	rng *simnet.RNG
	q   quorum.Majority

	// Acceptor state — the slide's three variables.
	ballotNum types.Ballot
	acceptNum types.Ballot
	acceptVal types.Value

	// Proposer state.
	phase       proposerPhase
	myValue     types.Value // the value this node wants decided
	curBallot   types.Ballot
	prepareAcks *quorum.Tally
	bestAccept  types.Ballot // highest AcceptNum among phase-1 acks
	bestVal     types.Value
	acceptVotes *quorum.Tally
	retryIn     int
	restarts    int // ballots started (livelock metric for F1)

	// Learner state.
	decided  bool
	decision types.Value

	out []Message
}

// New builds a Paxos node.
func New(id types.NodeID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	return &Node{
		id:  id,
		cfg: cfg,
		rng: simnet.NewRNG(cfg.Seed ^ (uint64(id) << 32)),
		q:   quorum.Majority{N: len(cfg.Peers)},
	}
}

// Propose asks the node to get v decided. The node keeps retrying until
// some value (not necessarily v) is decided. The caller yields ownership
// of v (types.Value discipline: immutable after creation).
func (n *Node) Propose(v types.Value) {
	n.myValue = v
	if n.phase == idle {
		n.startBallot()
	}
}

// Decided returns the decided value, if any.
func (n *Node) Decided() (types.Value, bool) { return n.decision, n.decided }

// Restarts returns how many ballots this proposer has started — the
// dueling-proposer livelock metric.
func (n *Node) Restarts() int { return n.restarts }

// Ballot returns the acceptor's current ballot (for tests).
func (n *Node) Ballot() types.Ballot { return n.ballotNum }

func (n *Node) startBallot() {
	n.restarts++
	n.curBallot = n.ballotNum.Next(n.id)
	n.phase = preparing
	n.prepareAcks = quorum.NewTally(n.q.Threshold())
	n.bestAccept = types.ZeroBallot
	n.bestVal = nil
	n.acceptVotes = nil
	n.armRetry()
	for _, p := range n.cfg.Peers {
		n.send(Message{Kind: MsgPrepare, To: p, Ballot: n.curBallot})
	}
}

func (n *Node) armRetry() {
	n.retryIn = n.cfg.RetryTicks
	if n.cfg.RandomBackoff {
		n.retryIn += n.rng.Intn(n.cfg.MaxBackoffTicks + 1)
	}
}

func (n *Node) send(m Message) {
	m.From = n.id
	n.out = append(n.out, m)
}

// Step consumes one delivered message.
func (n *Node) Step(m Message) {
	switch m.Kind {
	case MsgPrepare:
		n.onPrepare(m)
	case MsgAck:
		n.onAck(m)
	case MsgNack:
		n.onNack(m)
	case MsgAccept:
		n.onAccept(m)
	case MsgAccepted:
		n.onAccepted(m)
	case MsgDecide:
		n.learn(m.Val)
	}
}

// onPrepare is the slide's cohort phase 1: join any ballot ≥ current and
// report the latest accepted value.
func (n *Node) onPrepare(m Message) {
	if n.ballotNum.LessEq(m.Ballot) {
		n.ballotNum = m.Ballot
		n.send(Message{
			Kind: MsgAck, To: m.From, Ballot: m.Ballot,
			AcceptNum: n.acceptNum, Val: n.acceptVal,
		})
		return
	}
	n.send(Message{Kind: MsgNack, To: m.From, Ballot: n.ballotNum})
}

// onAck collects phase-1b votes; at a majority the proposer moves to
// phase 2 with the highest-ballot accepted value it learned, or its own.
func (n *Node) onAck(m Message) {
	if n.phase != preparing || m.Ballot != n.curBallot {
		return
	}
	if m.Val != nil && n.bestAccept.Less(m.AcceptNum) {
		n.bestAccept = m.AcceptNum
		n.bestVal = m.Val
	}
	if !n.prepareAcks.Add(m.From) {
		return
	}
	val := n.myValue
	if n.bestVal != nil {
		// "The value accepted in the highest ballot might have been
		// decided, I better propose this value."
		val = n.bestVal
	}
	n.phase = accepting
	n.acceptVotes = quorum.NewTally(n.q.Threshold())
	n.armRetry()
	for _, p := range n.cfg.Peers {
		n.send(Message{Kind: MsgAccept, To: p, Ballot: n.curBallot, Val: val})
	}
}

// onNack tells a stale proposer about a newer ballot so its next attempt
// can exceed it.
func (n *Node) onNack(m Message) {
	if n.phase != preparing && n.phase != accepting {
		return
	}
	if n.curBallot.Less(m.Ballot) && n.ballotNum.Less(m.Ballot) {
		n.ballotNum = m.Ballot
	}
}

// onAccept is cohort phase 2: accept unless promised a higher ballot.
func (n *Node) onAccept(m Message) {
	if n.ballotNum.LessEq(m.Ballot) {
		n.ballotNum = m.Ballot
		n.acceptNum = m.Ballot
		n.acceptVal = m.Val
		n.send(Message{Kind: MsgAccepted, To: m.From, Ballot: m.Ballot, Val: m.Val})
		return
	}
	n.send(Message{Kind: MsgNack, To: m.From, Ballot: n.ballotNum})
}

// onAccepted counts phase-2b votes; a majority decides and the decision
// propagates asynchronously to all.
func (n *Node) onAccepted(m Message) {
	if n.phase != accepting || m.Ballot != n.curBallot {
		return
	}
	if !n.acceptVotes.Add(m.From) {
		return
	}
	n.phase = done
	n.learn(m.Val)
	for _, p := range n.cfg.Peers {
		if p != n.id {
			n.send(Message{Kind: MsgDecide, To: p, Val: m.Val})
		}
	}
}

func (n *Node) learn(v types.Value) {
	if n.decided {
		if !n.decision.Equal(v) {
			panic(fmt.Sprintf("paxos: node %v decided twice: %q then %q", n.id, n.decision, v))
		}
		return
	}
	n.decided = true
	n.decision = v
	if n.phase != idle {
		n.phase = done
	}
}

// Tick drives proposer retries: a stalled ballot restarts with a higher
// number after the (possibly randomized) timeout.
func (n *Node) Tick() {
	if n.decided || (n.phase != preparing && n.phase != accepting) {
		return
	}
	n.retryIn--
	if n.retryIn <= 0 {
		n.startBallot()
	}
}

// Drain returns pending outbound messages.
func (n *Node) Drain() []Message {
	out := n.out
	n.out = nil
	return out
}
