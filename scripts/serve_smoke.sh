#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the live cluster runtime.
#
# Builds consensus-serve and consensus-load, starts a 3-node raft-backed
# sharded KV on localhost TCP, pushes a load burst through the client
# library, kills one node, pushes a second burst (the cluster must keep
# committing), then SIGTERMs the survivors and requires clean exits.
set -u

BASE_PORT="${SMOKE_BASE_PORT:-49531}"
DIR="$(mktemp -d)"
P0=""; P1=""; P2=""
FAIL=0

cleanup() {
    for pid in "$P0" "$P1" "$P2"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

die() {
    echo "serve-smoke: FAIL: $*" >&2
    for f in "$DIR"/n*.log; do
        [ -f "$f" ] && { echo "--- $f ---" >&2; cat "$f" >&2; }
    done
    exit 1
}

echo "serve-smoke: building CLIs"
go build -o "$DIR" ./cmd/consensus-serve ./cmd/consensus-load || die "build failed"

A0="127.0.0.1:$BASE_PORT"
A1="127.0.0.1:$((BASE_PORT + 1))"
A2="127.0.0.1:$((BASE_PORT + 2))"
PEERS="$A0,$A1,$A2"

echo "serve-smoke: starting 3-node cluster on $PEERS"
"$DIR/consensus-serve" -id 0 -peers "$PEERS" -tick 1ms >"$DIR/n0.log" 2>&1 & P0=$!
"$DIR/consensus-serve" -id 1 -peers "$PEERS" -tick 1ms >"$DIR/n1.log" 2>&1 & P1=$!
"$DIR/consensus-serve" -id 2 -peers "$PEERS" -tick 1ms >"$DIR/n2.log" 2>&1 & P2=$!
sleep 1

echo "serve-smoke: load burst 1 (full cluster)"
"$DIR/consensus-load" -addrs "$PEERS" -duration 2s -workers 8 -session 110000 \
    || die "load burst 1 committed nothing"

echo "serve-smoke: killing node 2 (pid $P2)"
kill -9 "$P2" 2>/dev/null
wait "$P2" 2>/dev/null
P2=""

echo "serve-smoke: load burst 2 (one node down)"
"$DIR/consensus-load" -addrs "$PEERS" -duration 2s -workers 8 -session 120000 \
    || die "load burst 2 committed nothing; cluster did not survive the kill"

echo "serve-smoke: graceful shutdown"
kill -TERM "$P0" "$P1"
wait "$P0"; E0=$?
wait "$P1"; E1=$?
P0=""; P1=""
[ "$E0" -eq 0 ] || die "node 0 exited $E0 on SIGTERM"
[ "$E1" -eq 0 ] || die "node 1 exited $E1 on SIGTERM"

# The shutdown summaries must show committed client operations: the
# bursts really went through consensus, not into a black hole.
TOTAL=0
for f in "$DIR/n0.log" "$DIR/n1.log"; do
    C=$(sed -n 's/.*done committed=\([0-9]*\).*/\1/p' "$f" | tail -1)
    [ -n "$C" ] || die "no shutdown summary in $f"
    TOTAL=$((TOTAL + C))
done
[ "$TOTAL" -gt 0 ] || die "surviving nodes report committed=0"

echo "serve-smoke: PASS (survivors committed $TOTAL ops, clean shutdown)"
