#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the live cluster runtime.
#
# Builds consensus-serve, consensus-load, and consensus-admin, starts a
# 3-node raft-backed sharded KV on localhost TCP with log compaction
# on, pushes a load burst through the client library, then exercises
# dynamic membership: waits until every original node has compacted,
# grows the cluster to 4 with a passive joiner (which can therefore
# only catch up through a snapshot transfer — asserted via admin
# status), votes an original node out and kills it, pushes a final
# burst through the reshaped cluster, and requires clean SIGTERM exits.
set -u

BASE_PORT="${SMOKE_BASE_PORT:-49531}"
DIR="$(mktemp -d)"
P0=""; P1=""; P2=""; P3=""
FAIL=0

cleanup() {
    for pid in "$P0" "$P1" "$P2" "$P3"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

die() {
    echo "serve-smoke: FAIL: $*" >&2
    for f in "$DIR"/n*.log; do
        [ -f "$f" ] && { echo "--- $f ---" >&2; cat "$f" >&2; }
    done
    exit 1
}

# poll_until <deadline-seconds> <description> <command...>
# Retries the command until it succeeds (exit 0) or the deadline dies.
poll_until() {
    local secs="$1" what="$2"; shift 2
    local tries=$((secs * 5))
    for _ in $(seq 1 "$tries"); do
        "$@" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    die "timed out waiting for $what"
}

# status_of <addr> — prints the node's admin status JSON.
status_of() {
    "$DIR/consensus-admin" -addrs "$1" status
}

echo "serve-smoke: building CLIs"
go build -o "$DIR" ./cmd/consensus-serve ./cmd/consensus-load ./cmd/consensus-admin \
    || die "build failed"

A0="127.0.0.1:$BASE_PORT"
A1="127.0.0.1:$((BASE_PORT + 1))"
A2="127.0.0.1:$((BASE_PORT + 2))"
A3="127.0.0.1:$((BASE_PORT + 3))"
PEERS="$A0,$A1,$A2"
PEERS4="$PEERS,$A3"

echo "serve-smoke: starting 3-node cluster on $PEERS (snapshot-every 8)"
"$DIR/consensus-serve" -id 0 -peers "$PEERS" -tick 1ms -snapshot-every 8 >"$DIR/n0.log" 2>&1 & P0=$!
"$DIR/consensus-serve" -id 1 -peers "$PEERS" -tick 1ms -snapshot-every 8 >"$DIR/n1.log" 2>&1 & P1=$!
"$DIR/consensus-serve" -id 2 -peers "$PEERS" -tick 1ms -snapshot-every 8 >"$DIR/n2.log" 2>&1 & P2=$!
sleep 1

echo "serve-smoke: load burst 1 (full cluster)"
"$DIR/consensus-load" -addrs "$PEERS" -duration 2s -workers 8 -session 110000 \
    || die "load burst 1 committed nothing"

# Every original node must have compacted before the join: the joiner's
# log prefix is then gone cluster-wide, so only an InstallSnapshot can
# catch it up.
compacted() {
    local addr out
    for addr in "$A0" "$A1" "$A2"; do
        out=$(status_of "$addr") || return 1
        echo "$out" | grep -q '"snap_index": 0[^0-9]' && return 1
        echo "$out" | grep -q '"snap_index":' || return 1
    done
    return 0
}
echo "serve-smoke: waiting for every node to compact"
poll_until 20 "log compaction on all nodes" compacted

echo "serve-smoke: joining node 3 on $A3"
"$DIR/consensus-serve" -id 3 -peers "$PEERS4" -tick 1ms -join -snapshot-every 8 >"$DIR/n3.log" 2>&1 & P3=$!
sleep 0.5
"$DIR/consensus-admin" -addrs "$PEERS" add-node 3 "$A3" \
    || die "add-node was not submitted on any node"

# Snapshot catch-up assertion: the joiner must report at least one
# installed snapshot and a 4-member config on every shard group.
joined() {
    local out
    out=$(status_of "$A3") || return 1
    echo "$out" | grep -q '"installs": 0[^0-9]' && return 1
    echo "$out" | grep -q '"installs":' || return 1
    # Inside the indented members arrays, ids sit alone on a line; the
    # joiner appears once per shard group.
    [ "$(echo "$out" | grep -c '^[[:space:]]*3$')" -ge 2 ]
}
echo "serve-smoke: waiting for node 3 to catch up via snapshot"
poll_until 30 "joiner snapshot install + 4-member config" joined

echo "serve-smoke: load burst 2 (4-node cluster)"
"$DIR/consensus-load" -addrs "$PEERS4" -duration 2s -workers 8 -session 120000 \
    || die "load burst 2 committed nothing after the join"

echo "serve-smoke: voting node 0 out"
"$DIR/consensus-admin" -addrs "$PEERS4" remove-node 0 \
    || die "remove-node was not submitted on any node"
removed() {
    local out
    out=$(status_of "$A1") || return 1
    # No standalone "0" line: node 0 is out of every group's member set.
    ! echo "$out" | grep -q '^[[:space:]]*0,\{0,1\}$'
}
poll_until 20 "node 0 leaving the member set" removed

echo "serve-smoke: killing removed node 0 (pid $P0)"
kill -9 "$P0" 2>/dev/null
wait "$P0" 2>/dev/null
P0=""

echo "serve-smoke: load burst 3 (reshaped cluster 1,2,3)"
"$DIR/consensus-load" -addrs "$A1,$A2,$A3" -duration 2s -workers 8 -session 130000 \
    || die "load burst 3 committed nothing; reshaped cluster did not serve"

echo "serve-smoke: graceful shutdown"
kill -TERM "$P1" "$P2" "$P3"
wait "$P1"; E1=$?
wait "$P2"; E2=$?
wait "$P3"; E3=$?
P1=""; P2=""; P3=""
[ "$E1" -eq 0 ] || die "node 1 exited $E1 on SIGTERM"
[ "$E2" -eq 0 ] || die "node 2 exited $E2 on SIGTERM"
[ "$E3" -eq 0 ] || die "node 3 exited $E3 on SIGTERM"

# The shutdown summaries must show committed client operations: the
# bursts really went through consensus, not into a black hole.
TOTAL=0
for f in "$DIR/n1.log" "$DIR/n2.log" "$DIR/n3.log"; do
    C=$(sed -n 's/.*done committed=\([0-9]*\).*/\1/p' "$f" | tail -1)
    [ -n "$C" ] || die "no shutdown summary in $f"
    TOTAL=$((TOTAL + C))
done
[ "$TOTAL" -gt 0 ] || die "surviving nodes report committed=0"

echo "serve-smoke: PASS (survivors committed $TOTAL ops; join-by-snapshot and removal verified)"
