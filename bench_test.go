// Package fortyconsensus's top-level benchmarks regenerate every table
// and figure of the paper (see EXPERIMENTS.md): one benchmark per
// artifact, each printing the same rows as `consensus-bench <id>`.
//
//	go test -bench=. -benchmem
//
// The experiments are deterministic (seeded simulation), so b.N
// iterations re-measure the harness cost while the printed artifact is
// stable; each benchmark reports the artifact once.
package main

import (
	"testing"

	"fortyconsensus/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var artifact string
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		artifact = r.Artifact
	}
	if testing.Verbose() {
		b.Log("\n" + artifact)
	}
}

func BenchmarkT1_Characterization(b *testing.B)       { benchExperiment(b, "t1") }
func BenchmarkT2_PBFTComplexity(b *testing.B)         { benchExperiment(b, "t2") }
func BenchmarkT3_TrustedHW(b *testing.B)              { benchExperiment(b, "t3") }
func BenchmarkT4_HybridQuorums(b *testing.B)          { benchExperiment(b, "t4") }
func BenchmarkF1_DuelingProposers(b *testing.B)       { benchExperiment(b, "f1") }
func BenchmarkF2_FastPaxos(b *testing.B)              { benchExperiment(b, "f2") }
func BenchmarkF3_FlexibleQuorums(b *testing.B)        { benchExperiment(b, "f3") }
func BenchmarkF4_Zyzzyva(b *testing.B)                { benchExperiment(b, "f4") }
func BenchmarkF5_HotStuffPipeline(b *testing.B)       { benchExperiment(b, "f5") }
func BenchmarkF6_XFT(b *testing.B)                    { benchExperiment(b, "f6") }
func BenchmarkF7_PoWForks(b *testing.B)               { benchExperiment(b, "f7") }
func BenchmarkF8_PoSFairness(b *testing.B)            { benchExperiment(b, "f8") }
func BenchmarkF9_InteractiveConsistency(b *testing.B) { benchExperiment(b, "f9") }
func BenchmarkF10_CnCDecomposition(b *testing.B)      { benchExperiment(b, "f10") }
func BenchmarkF11_SpannerStyle2PC(b *testing.B)       { benchExperiment(b, "f11") }
func BenchmarkF12_CheapSwitch(b *testing.B)           { benchExperiment(b, "f12") }
func BenchmarkX1_SelfishMining(b *testing.B)          { benchExperiment(b, "x1") }
func BenchmarkX2_SMRThroughput(b *testing.B)          { benchExperiment(b, "x2") }
func BenchmarkX4_ShardedTxns(b *testing.B)            { benchExperiment(b, "x4") }

// TestExperimentsRegenerate smoke-runs every experiment so `go test`
// alone exercises the full reproduction path.
func TestExperimentsRegenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take ~1 minute")
	}
	for _, r := range experiments.RunAll() {
		if r.Artifact == "" {
			t.Errorf("%s produced an empty artifact", r.ID)
		}
		t.Logf("%s — %s: ok (%d bytes)", r.ID, r.Caption, len(r.Artifact))
	}
}
