// benchjson converts `go test -bench -benchmem` text output into a
// JSON benchmark record, one entry per benchmark with ns/op, B/op and
// allocs/op, so successive PRs can diff performance numbers
// mechanically (see `make bench-json`, which writes BENCH_7.json).
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -o BENCH_7.json
//
// Unknown trailing metrics (e.g. ReportMetric outputs such as
// "failover-ticks") are preserved under "metrics". Lines that are not
// benchmark results or package trailers are ignored, so the raw `go
// test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result row.
type Entry struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(entries), *out)
}

// parse reads `go test -bench` output. Benchmark lines precede their
// package's "ok <pkg> <time>" trailer, so entries accumulate unlabeled
// and are stamped with the package when the trailer arrives.
func parse(sc *bufio.Scanner) ([]Entry, error) {
	var entries []Entry
	unlabeled := 0 // index of the first entry not yet assigned a package
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		switch {
		case len(f) >= 3 && strings.HasPrefix(f[0], "Benchmark"):
			e, err := parseBench(f)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", sc.Text(), err)
			}
			entries = append(entries, e)
		case len(f) >= 2 && (f[0] == "ok" || f[0] == "FAIL"):
			for ; unlabeled < len(entries); unlabeled++ {
				entries[unlabeled].Package = f[1]
			}
		}
	}
	return entries, sc.Err()
}

func parseBench(f []string) (Entry, error) {
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, err
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := int64(v)
			e.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			e.AllocsPerOp = &a
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, nil
}
