// Command cnc-inspect prints the Consensus & Commitment framework view
// of every implemented protocol: its five-aspect taxonomy entry and its
// decomposition into Leader Election → Value Discovery → Fault-tolerant
// Agreement → Decision — the paper's pedagogical contribution, as a
// queryable artifact.
//
// Usage:
//
//	cnc-inspect            # all protocols
//	cnc-inspect paxos pbft # selected protocols
package main

import (
	"fmt"
	"os"

	"fortyconsensus/internal/core"
	"fortyconsensus/internal/metrics"

	// Importing the protocol packages registers their profiles.
	_ "fortyconsensus/internal/cheapbft"
	_ "fortyconsensus/internal/commit"
	_ "fortyconsensus/internal/fastpaxos"
	_ "fortyconsensus/internal/flexpaxos"
	_ "fortyconsensus/internal/hotstuff"
	_ "fortyconsensus/internal/minbft"
	_ "fortyconsensus/internal/multipaxos"
	_ "fortyconsensus/internal/paxos"
	_ "fortyconsensus/internal/pbft"
	_ "fortyconsensus/internal/pos"
	_ "fortyconsensus/internal/pow"
	_ "fortyconsensus/internal/raft"
	_ "fortyconsensus/internal/seemore"
	_ "fortyconsensus/internal/upright"
	_ "fortyconsensus/internal/xft"
	_ "fortyconsensus/internal/zyzzyva"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[a] = true
	}
	t := metrics.NewTable("Consensus & Commitment framework — protocol registry",
		"protocol", "synchrony", "failure", "strategy", "awareness",
		"nodes", "phases", "complexity", "C&C decomposition")
	for _, p := range core.All() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		t.AddRow(p.Name, p.Synchrony.String(), p.Failure.String(), p.Strategy.String(),
			p.Awareness.String(), p.NodesFormula, p.PhasesString(),
			p.Complexity.String(), p.DecompositionString())
	}
	fmt.Print(t.String())
	fmt.Println("\nNotes:")
	for _, p := range core.All() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		fmt.Printf("  %-12s %s\n", p.Name+":", p.Notes)
	}
}
