// Command consensus-serve runs one node of a live replicated KV
// cluster: the internal/shard sharded store, raft or multipaxos per
// shard group, served over TCP by the internal/live runtime.
//
// A 3-node local cluster:
//
//	consensus-serve -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	consensus-serve -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	consensus-serve -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//
// SIGINT/SIGTERM shuts the node down gracefully and prints a summary.
// -metrics serves JSON counters on /metrics (and /healthz).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fortyconsensus/internal/live"
	"fortyconsensus/internal/types"
)

func main() {
	var (
		id      = flag.Int("id", 0, "this node's ID (index into -peers)")
		peers   = flag.String("peers", "", "comma-separated peer addresses; index = node ID")
		shards  = flag.Int("shards", 2, "consensus groups (shard count)")
		backend = flag.String("backend", live.BackendRaft, "consensus backend: raft | multipaxos")
		tick    = flag.Duration("tick", 2*time.Millisecond, "wall-clock length of one protocol tick")
		metrics = flag.String("metrics", "", "HTTP metrics address (empty = disabled)")
		seed    = flag.Uint64("seed", 1, "protocol RNG seed (election jitter)")
		join    = flag.Bool("join", false, "start passive as a fresh joiner; vote it in with consensus-admin add-node")
		every   = flag.Int("snapshot-every", 0, "compact each group's log every N applied slots (0 = never)")
	)
	flag.Parse()

	list := strings.Split(*peers, ",")
	if *peers == "" || len(list) < 1 {
		fmt.Fprintln(os.Stderr, "consensus-serve: -peers is required")
		os.Exit(2)
	}
	if *id < 0 || *id >= len(list) {
		fmt.Fprintf(os.Stderr, "consensus-serve: -id %d out of range for %d peers\n", *id, len(list))
		os.Exit(2)
	}
	addrs := make(map[types.NodeID]string, len(list))
	for i, a := range list {
		addrs[types.NodeID(i)] = strings.TrimSpace(a)
	}

	srv, err := live.NewServer(live.ServerConfig{
		Self:          types.NodeID(*id),
		Addrs:         addrs,
		Shards:        *shards,
		Backend:       *backend,
		TickEvery:     *tick,
		Seed:          *seed,
		Join:          *join,
		SnapshotEvery: *every,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-serve: %v\n", err)
		os.Exit(1)
	}
	srv.Start()
	fmt.Printf("consensus-serve: node %d serving %s (%d shards, %s) on %s\n",
		*id, srv.Addr(), *shards, *backend, addrs[types.NodeID(*id)])

	if *metrics != "" {
		maddr, err := srv.ServeMetrics(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consensus-serve: metrics: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		fmt.Printf("consensus-serve: metrics on http://%s/metrics\n", maddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("consensus-serve: node %d: %v, shutting down\n", *id, s)
	srv.Close()

	m := srv.Metrics()
	ts := srv.TransportStats()
	fmt.Printf("consensus-serve: node %d done committed=%d applied=%d sent=%d dropped=%d reconnects=%d\n",
		*id, m.Committed(), m.Applied(), ts.Sent, ts.Dropped, ts.Reconnects)
}
