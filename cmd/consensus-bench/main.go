// Command consensus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	consensus-bench            # run every experiment
//	consensus-bench t1 f7      # run selected experiments by ID
//	consensus-bench -list      # list experiment IDs
//	consensus-bench -json      # machine-readable per-experiment metrics
//
// With -json, each experiment is run sequentially and reported as one
// JSON object per line: its ID, caption, wall-clock milliseconds, the
// message-complexity counters the simulation runners accumulated while
// it ran, and the rendered artifact.
//
// Experiment IDs and their mapping to the paper's artifacts are indexed
// in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fortyconsensus/internal/experiments"
	"fortyconsensus/internal/runner"
)

// report is one experiment's -json record.
type report struct {
	ID       string       `json:"id"`
	Caption  string       `json:"caption"`
	WallMS   float64      `json:"wallMillis"`
	Stats    runner.Stats `json:"stats"`
	Artifact string       `json:"artifact"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit one JSON object per experiment with wall-clock and message stats")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		before := runner.GlobalStats()
		start := time.Now()
		r, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		if *asJSON {
			enc.Encode(report{
				ID:       r.ID,
				Caption:  r.Caption,
				WallMS:   float64(time.Since(start).Microseconds()) / 1000,
				Stats:    runner.GlobalStats().Sub(before),
				Artifact: r.Artifact,
			})
		} else {
			fmt.Printf("=== %s — %s ===\n%s\n", r.ID, r.Caption, r.Artifact)
		}
	}
	os.Exit(exit)
}
