// Command consensus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	consensus-bench            # run every experiment
//	consensus-bench t1 f7      # run selected experiments by ID
//	consensus-bench -list      # list experiment IDs
//
// Experiment IDs and their mapping to the paper's artifacts are indexed
// in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fortyconsensus/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	for _, id := range ids {
		r, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		fmt.Printf("=== %s — %s ===\n%s\n", r.ID, r.Caption, r.Artifact)
	}
	os.Exit(exit)
}
