// Command consensus-admin operates a live cluster's membership and
// inspects its replication state over the client wire protocol:
//
//	consensus-admin -addrs 127.0.0.1:7000,127.0.0.1:7001 status
//	consensus-admin -addrs ... add-node 3 127.0.0.1:7003
//	consensus-admin -addrs ... remove-node 0
//
// status queries every address and prints one JSON document per node.
// add-node/remove-node broadcast to every address — each node learns
// the joiner's address, and whichever node leads a shard group submits
// the config change through consensus. Membership commits
// asynchronously: poll status until the member set reflects the change.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	"fortyconsensus/internal/live"
	"fortyconsensus/internal/types"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: consensus-admin -addrs a,b,c status | add-node <id> <addr> | remove-node <id>")
	os.Exit(2)
}

func main() {
	var (
		addrsFlag = flag.String("addrs", "", "comma-separated node addresses to contact")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-node request timeout")
	)
	flag.Parse()
	if *addrsFlag == "" || flag.NArg() < 1 {
		usage()
	}
	addrs := strings.Split(*addrsFlag, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	switch flag.Arg(0) {
	case "status":
		ok := 0
		for _, a := range addrs {
			resp, err := live.AdminCall(a, live.AdminStatusOp(), *timeout)
			if err != nil {
				fmt.Printf("%s\tunreachable: %v\n", a, err)
				continue
			}
			if resp.Status != live.StatusOK {
				fmt.Printf("%s\tstatus %d: %s\n", a, resp.Status, resp.Result)
				continue
			}
			fmt.Printf("%s\t%s\n", a, indented(resp.Result))
			ok++
		}
		if ok == 0 {
			os.Exit(1)
		}
	case "add-node":
		if flag.NArg() != 3 {
			usage()
		}
		id := parseID(flag.Arg(1))
		broadcast(addrs, live.AdminAddNodeOp(id, flag.Arg(2)), *timeout)
	case "remove-node":
		if flag.NArg() != 2 {
			usage()
		}
		id := parseID(flag.Arg(1))
		broadcast(addrs, live.AdminRemoveNodeOp(id), *timeout)
	default:
		usage()
	}
}

func parseID(s string) types.NodeID {
	id, err := strconv.ParseInt(s, 10, 64)
	if err != nil || id < 0 {
		fmt.Fprintf(os.Stderr, "consensus-admin: bad node id %q\n", s)
		os.Exit(2)
	}
	return types.NodeID(id)
}

// broadcast sends op to every address; success requires at least one
// node to have submitted the config change through a group it leads.
func broadcast(addrs []string, op []byte, timeout time.Duration) {
	submitted := 0
	for _, a := range addrs {
		resp, err := live.AdminCall(a, op, timeout)
		if err != nil {
			fmt.Printf("%s\tunreachable: %v\n", a, err)
			continue
		}
		if resp.Status != live.StatusOK {
			fmt.Printf("%s\tstatus %d: %s\n", a, resp.Status, resp.Result)
			continue
		}
		var res live.AdminConfResult
		if err := json.Unmarshal(resp.Result, &res); err != nil {
			fmt.Printf("%s\tundecodable reply: %v\n", a, err)
			continue
		}
		fmt.Printf("%s\tsubmitted on %d/%d groups\n", a, res.Submitted, res.Groups)
		submitted += res.Submitted
	}
	if submitted == 0 {
		fmt.Fprintln(os.Stderr, "consensus-admin: no contacted node leads any group; change not submitted")
		os.Exit(1)
	}
}

// indented pretty-prints one status JSON blob for the terminal.
func indented(raw []byte) string {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return string(raw)
	}
	out, err := json.MarshalIndent(v, "\t", "  ")
	if err != nil {
		return string(raw)
	}
	return string(out)
}
