// consensus-explore runs seed-sweep safety campaigns: random nemesis
// fault schedules against the registered protocol harnesses, a shared
// invariant suite checked every tick, automatic shrinking of failing
// schedules, and bit-identical replay of reproducer files.
//
// Episodes fan out across a worker pool (-workers, default GOMAXPROCS)
// and merge in canonical seed order, so every report and reproducer is
// bit-identical to a sequential sweep.
//
//	consensus-explore -protocol raft -seeds 500 -faults 6
//	consensus-explore -protocol all -seeds 24 -faults 4 -shrink -out /tmp/repro
//	consensus-explore -protocol shard -seeds 64 -workers 8
//	consensus-explore -replay /tmp/repro/raft-seed42.nemesis
//
// Exit status: 0 when every run is safe, 1 when any invariant was
// violated, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fortyconsensus/internal/det"
	"fortyconsensus/internal/explore"
	"fortyconsensus/internal/nemesis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protocol = flag.String("protocol", "all", "protocol to campaign against, or 'all' ("+strings.Join(explore.Names(), ", ")+")")
		seeds    = flag.Int("seeds", 24, "runs per protocol; run i uses seed seed-base+i")
		seedBase = flag.Uint64("seed-base", 1, "first seed of the sweep")
		faults   = flag.Int("faults", 4, "fault budget per generated schedule (0 = fault-free sweep)")
		nodes    = flag.Int("nodes", 0, "cluster size override (0 = protocol default)")
		horizon  = flag.Int("horizon", 0, "run length in ticks (0 = protocol default)")
		classes  = flag.String("classes", "", "comma-separated fault classes ("+strings.Join(nemesis.Keywords(), ", ")+"); default crash-model mix")
		shrink   = flag.Bool("shrink", true, "shrink failing schedules to minimal reproducers")
		workers  = flag.Int("workers", 0, "episode worker pool size (0 = GOMAXPROCS, 1 = sequential); results are bit-identical at any setting")
		out      = flag.String("out", "", "directory for reproducer .nemesis files (default: don't write)")
		replay   = flag.String("replay", "", "replay a reproducer spec file and verify its trace hash")
		verbose  = flag.Bool("v", false, "log every run")
	)
	flag.Parse()

	if *replay != "" {
		return replaySpec(*replay, *verbose)
	}

	var ops []nemesis.Op
	if *classes != "" {
		for _, kw := range strings.Split(*classes, ",") {
			kw = strings.TrimSpace(kw)
			op, ok := nemesis.ClassByKeyword(kw)
			if !ok {
				fmt.Fprintf(os.Stderr, "consensus-explore: unknown fault class %q (want one of %s)\n",
					kw, strings.Join(nemesis.Keywords(), ", "))
				return 2
			}
			ops = append(ops, op)
		}
	}

	var protos []explore.Protocol
	if *protocol == "all" {
		for _, name := range explore.Names() {
			p, _ := explore.Lookup(name)
			protos = append(protos, p)
		}
	} else {
		p, ok := explore.Lookup(*protocol)
		if !ok {
			fmt.Fprintf(os.Stderr, "consensus-explore: unknown protocol %q (want one of %s, or all)\n",
				*protocol, strings.Join(explore.Names(), ", "))
			return 2
		}
		protos = append(protos, p)
	}

	violations := 0
	for _, p := range protos {
		c := explore.Campaign{
			Proto: p, Seeds: *seeds, SeedBase: *seedBase, Faults: *faults,
			Nodes: *nodes, Horizon: *horizon, Classes: ops, Shrink: *shrink,
			Workers: *workers,
		}
		if *verbose {
			c.Log = func(format string, args ...any) {
				fmt.Printf("  ["+p.Name+"] "+format+"\n", args...)
			}
		}
		start := time.Now()
		res := c.Run()
		elapsed := time.Since(start)
		printCampaign(res)
		if secs := elapsed.Seconds(); secs > 0 && res.Runs > 0 {
			fmt.Printf("  %d episode(s) in %.2fs — %.1f episodes/sec\n",
				res.Runs, secs, float64(res.Runs)/secs)
		}
		violations += res.Outcomes[explore.OutcomeViolation]
		if *out != "" {
			if err := writeFailures(*out, res); err != nil {
				fmt.Fprintf(os.Stderr, "consensus-explore: %v\n", err)
				return 2
			}
		}
	}
	if violations > 0 {
		fmt.Printf("\n%d violating run(s) — reproducers above\n", violations)
		return 1
	}
	return 0
}

// printCampaign renders one protocol's survival matrix and fault
// exposure.
func printCampaign(res *explore.CampaignResult) {
	fmt.Printf("\n%s: %d run(s)  ok=%d stall=%d violation=%d\n",
		res.Protocol, res.Runs,
		res.Outcomes[explore.OutcomeOK],
		res.Outcomes[explore.OutcomeStall],
		res.Outcomes[explore.OutcomeViolation])
	classes := det.SortedKeys(res.Matrix)
	fmt.Printf("  %-12s %6s %6s %10s\n", "fault class", "ok", "stall", "violation")
	for _, c := range classes {
		row := res.Matrix[c]
		fmt.Printf("  %-12s %6d %6d %10d\n", c,
			row[explore.OutcomeOK], row[explore.OutcomeStall], row[explore.OutcomeViolation])
	}
	e := res.Exposure
	fmt.Printf("  exposure: %d crash, %d restart, %d partition, %d heal, %d cut; %d msgs sent, %d dropped\n",
		e.Crashes, e.Restarts, e.Partitions, e.Heals, e.CutLinks, e.Sent, e.Dropped)
	for _, f := range res.Failures {
		fmt.Printf("  FAIL seed %d: %s (hash %s)\n", f.Result.Seed, f.Result.Violation, f.Result.Hash)
		if f.Shrunk != nil {
			fmt.Printf("    shrunk to %d fault event(s), horizon %d\n",
				f.Shrunk.Schedule.FaultCount(), f.Shrunk.Horizon)
		}
	}
}

// writeFailures persists reproducer specs (shrunk when available).
func writeFailures(dir string, res *explore.CampaignResult) error {
	if len(res.Failures) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range res.Failures {
		sp := f.Spec
		if f.Shrunk != nil {
			sp = f.Shrunk
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.nemesis", res.Protocol, f.Result.Seed))
		if err := os.WriteFile(path, sp.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}

// replaySpec re-runs a reproducer file and verifies the trace hash.
func replaySpec(path string, verbose bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-explore: %v\n", err)
		return 2
	}
	sp, err := nemesis.Decode(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-explore: %v\n", err)
		return 2
	}
	p, ok := explore.Lookup(sp.Protocol)
	if !ok {
		fmt.Fprintf(os.Stderr, "consensus-explore: spec protocol %q is not registered\n", sp.Protocol)
		return 2
	}
	res, match := explore.Replay(p, sp)
	fmt.Printf("%s: nodes=%d seed=%d horizon=%d faults=%d -> %s (hash %s)\n",
		sp.Protocol, res.Nodes, sp.Seed, res.Horizon, sp.Schedule.FaultCount(), res.Outcome, res.Hash)
	if res.Violation != nil {
		fmt.Printf("  violation at tick %d: %s\n", res.ViolationAt, res.Violation)
	}
	if sp.Hash == "" {
		fmt.Println("  spec carries no recorded hash; nothing to verify")
	} else if match {
		fmt.Println("  replay is bit-identical to the recorded trace")
	} else {
		fmt.Printf("  HASH MISMATCH: recorded %s\n", sp.Hash)
		return 1
	}
	if verbose && res.Outcome == explore.OutcomeViolation {
		fmt.Printf("  reproducer:\n%s", sp.Encode())
	}
	if res.Outcome == explore.OutcomeViolation {
		return 1
	}
	return 0
}
