// Command powsim runs a standalone Proof-of-Work network simulation:
// real SHA-256d mining at laptop difficulty, block gossip over the
// simulated fabric, fork resolution, and difficulty retargeting —
// printing a running commentary plus final per-miner statistics.
//
// Usage:
//
//	powsim [-miners 4] [-height 40] [-delay 5] [-hash 1024]
package main

import (
	"flag"
	"fmt"

	"fortyconsensus/internal/metrics"
	"fortyconsensus/internal/pow"
	"fortyconsensus/internal/runner"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

func main() {
	minerCount := flag.Int("miners", 4, "number of miners")
	height := flag.Int("height", 40, "target best-chain height")
	delay := flag.Int("delay", 5, "block propagation delay in ticks")
	hashPerTick := flag.Int("hash", 1024, "hash attempts per miner per tick")
	seed := flag.Uint64("seed", 7, "simulation seed")
	flag.Parse()

	params := pow.DefaultParams()
	fab := simnet.NewFabric(simnet.Options{MinDelay: *delay, MaxDelay: *delay + 2, Seed: *seed})
	rc := runner.New(runner.Config[pow.Message]{Fabric: fab, Dest: pow.Dest, Src: pow.Src, Kind: pow.Kind})
	peers := make([]types.NodeID, *minerCount)
	for i := range peers {
		peers[i] = types.NodeID(i)
	}
	miners := make([]*pow.Miner, *minerCount)
	for i := range miners {
		miners[i] = pow.NewMiner(types.NodeID(i), pow.MinerConfig{
			Params: params, Peers: peers, HashPerTick: *hashPerTick,
			Seed: *seed + uint64(i)*991,
		})
		rc.Add(types.NodeID(i), miners[i])
	}
	miners[0].SubmitTx(pow.Tx("alice pays bob 10"))
	miners[1].SubmitTx(pow.Tx("carol pays dave 5"))

	last := uint64(0)
	rc.RunUntil(func() bool {
		if h := miners[0].Chain().Height(); h > last {
			last = h
			_, _, bits := miners[0].Chain().Tip()
			fmt.Printf("tick %6d  height %3d  bits %08x\n", rc.Now(), h, bits)
		}
		return miners[0].Chain().Height() >= uint64(*height)
	}, 10_000_000)
	rc.Run(4 * *delay) // final propagation

	fmt.Println()
	t := metrics.NewTable("Final state", "miner", "blocks found", "best-chain rewards", "stale seen", "reorgs", "height")
	shares := miners[0].RewardShare()
	for i, m := range miners {
		reorgs, _ := m.Chain().Reorgs()
		t.AddRowf(fmt.Sprintf("miner-%d", i), m.Mined(), shares[i], m.Chain().StaleBlocks(), reorgs, m.Chain().Height())
	}
	fmt.Print(t.String())

	agree := 0
	for _, m := range miners[1:] {
		cp := pow.CommonPrefix(miners[0].Chain(), m.Chain())
		if cp >= int(miners[0].Chain().Height()) {
			agree++
		}
	}
	fmt.Printf("\nchains in full best-prefix agreement with miner-0: %d/%d\n", agree, len(miners)-1)
}
