// Command consensus-load is a closed-loop load generator for a
// consensus-serve cluster: N workers each keep one operation in
// flight, and the run ends with throughput and latency percentiles.
//
//	consensus-load -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	    -workers 8 -duration 5s
//
// Exits nonzero if no operation committed — a burst against a dead or
// leaderless cluster fails loudly, which the smoke script relies on.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"fortyconsensus/internal/kvstore"
	"fortyconsensus/internal/live"
	"fortyconsensus/internal/metrics"
	"fortyconsensus/internal/types"
)

func main() {
	var (
		addrsFlag = flag.String("addrs", "", "comma-separated server addresses; index = node ID")
		shards    = flag.Int("shards", 2, "cluster shard count (must match the servers)")
		workers   = flag.Int("workers", 8, "concurrent closed-loop workers")
		duration  = flag.Duration("duration", 3*time.Second, "how long to run")
		keys      = flag.Int("keys", 64, "distinct keys in the working set")
		writePct  = flag.Int("write-pct", 80, "percentage of operations that write (rest read)")
		session   = flag.Int64("session", 0, "client session base (0 = derive from clock)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-attempt timeout")
	)
	flag.Parse()

	if *addrsFlag == "" {
		fmt.Fprintln(os.Stderr, "consensus-load: -addrs is required")
		os.Exit(2)
	}
	addrs := strings.Split(*addrsFlag, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	base := *session
	if base == 0 {
		// Back-to-back runs must not collide in the servers' dedup
		// caches, so the default session base is clock-derived. This is
		// harness code: the determinism discipline binds the protocol
		// packages, not the load generator.
		base = time.Now().UnixNano() & 0x7fff_ffff_0000
	}

	cl, err := live.NewClient(live.ClientConfig{
		Addrs:          addrs,
		Shards:         *shards,
		SessionBase:    types.ClientID(base),
		AttemptTimeout: *timeout,
		Deadline:       *duration + 10*time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "consensus-load: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	type workerResult struct {
		latUS []int // latency per successful op, microseconds
		errs  int
	}
	results := make([]workerResult, *workers)
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			r := &results[w]
			for time.Now().Before(stop) {
				key := fmt.Sprintf("load-%d", rng.Intn(*keys))
				var cmd kvstore.Command
				if rng.Intn(100) < *writePct {
					cmd = kvstore.Incr(key, 1)
				} else {
					cmd = kvstore.Get(key)
				}
				t0 := time.Now()
				_, err := cl.Do(cmd)
				if err != nil {
					r.errs++
					continue
				}
				r.latUS = append(r.latUS, int(time.Since(t0).Microseconds()))
			}
		}(w)
	}
	wg.Wait()

	hist := metrics.NewHistogram()
	errs := 0
	for _, r := range results {
		for _, l := range r.latUS {
			hist.Add(l)
		}
		errs += r.errs
	}
	sum := hist.Snapshot()
	tput := float64(sum.Count) / duration.Seconds()
	fmt.Printf("consensus-load: ops=%d errors=%d throughput=%.1f ops/s\n", sum.Count, errs, tput)
	fmt.Printf("consensus-load: latency_us p50=%d p90=%d p99=%d max=%d mean=%.1f\n",
		sum.P50, sum.P90, sum.P99, sum.Max, sum.Mean)

	if sum.Count == 0 {
		fmt.Fprintln(os.Stderr, "consensus-load: no operation committed")
		os.Exit(1)
	}
}
