package main

import (
	"os"
	"path/filepath"
	"testing"
)

// protocolPackages pins the set of packages the protocol-contract
// analyzers must keep covering. Adding a prefix to protocolExempt that
// swallows any of these is a lint-scope regression, not a refactor.
var protocolPackages = []string{
	"internal/chaincrypto",
	"internal/cheapbft",
	"internal/commit",
	"internal/core",
	"internal/det",
	"internal/fastpaxos",
	"internal/flexpaxos",
	"internal/hotstuff",
	"internal/minbft",
	"internal/multipaxos",
	"internal/paxos",
	"internal/pbft",
	"internal/pos",
	"internal/pow",
	"internal/quorum",
	"internal/raft",
	"internal/seemore",
	"internal/shard",
	"internal/smr",
	"internal/snapshot",
	"internal/trustedhw",
	"internal/types",
	"internal/upright",
	"internal/xft",
	"internal/zyzzyva",
}

// mustBeExempt pins the harness layer: real-time and IO code that is
// allowed wall clocks, goroutines, and map iteration.
var mustBeExempt = []string{
	"cmd/consensus-serve",
	"cmd/consensus-lint",
	"examples/tcpraft",
	"internal/live",
	"internal/runner",
	"internal/simnet",
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestProtocolScopeDidNotShrink fails if any pinned protocol package
// has become exempt from the protocol-contract analyzers.
func TestProtocolScopeDidNotShrink(t *testing.T) {
	for _, pkg := range protocolPackages {
		if exempt(pkg, protocolExempt) {
			t.Errorf("%s is exempt from the protocol-contract analyzers; protocol scope shrank", pkg)
		}
	}
}

// TestHarnessLayerIsExempt pins the other direction: the harness
// packages must stay out of the protocol analyzers' scope, so a scope
// widening that would drown the build in harness findings is caught
// here rather than in CI noise.
func TestHarnessLayerIsExempt(t *testing.T) {
	for _, pkg := range mustBeExempt {
		if !exempt(pkg, protocolExempt) {
			t.Errorf("%s is not exempt; the harness layer must not be under protocol-contract analysis", pkg)
		}
	}
}

// TestScopeListsExistOnDisk keeps both pinned lists and the exempt
// prefixes honest: every entry must name a real directory, so renames
// can't silently turn scope pins into dead strings.
func TestScopeListsExistOnDisk(t *testing.T) {
	root := moduleRoot(t)
	check := func(list []string, label string) {
		for _, rel := range list {
			fi, err := os.Stat(filepath.Join(root, filepath.FromSlash(rel)))
			if err != nil || !fi.IsDir() {
				t.Errorf("%s entry %q does not name a directory in the module", label, rel)
			}
		}
	}
	check(protocolPackages, "protocolPackages")
	check(mustBeExempt, "mustBeExempt")
	check(protocolExempt, "protocolExempt")
}
