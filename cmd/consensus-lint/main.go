// Command consensus-lint is the repo's determinism-contract
// multichecker (DESIGN.md, "Determinism contract"). It loads the whole
// module, builds a package-level call graph, and runs six analyzers:
//
//	nodeterm    no wall-clock, global randomness, env reads,
//	            goroutines or channels in protocol code (direct uses,
//	            calls or captured function values)
//	determtaint no call chain from protocol code that reaches any of
//	            the above through module-internal helpers, method
//	            values, or conservatively-resolved interface dispatch
//	valueown    types.Value ownership: no mutation after a value is
//	            published into a message or log entry, no retention of
//	            a borrowed batch slice past the handler return
//	exhaustive  switches over message-kind/phase/state enums must
//	            cover every declared constant
//	maporder    no order-sensitive effects inside range-over-map
//	quorumlit   no hand-rolled quorum arithmetic outside internal/quorum
//
// maporder and quorumlit run over every package in the module — the
// harness and CLIs pin golden artifacts too. The four protocol-contract
// analyzers skip the harness layer (runner, simnet, experiments,
// workload, metrics, transport, kvstore, wal, nemesis, explore, cmd,
// examples and the linter itself), which legitimately runs goroutines,
// real sockets and wall-clock benchmarks. internal/quorum is exempt
// from quorumlit — it is where the arithmetic is supposed to live.
//
// Findings are suppressed site-by-site with
//
//	//lint:allow <check> <reason>
//
// on the flagged line or the line above; the reason is mandatory, and
// a directive that no longer suppresses anything is itself a finding.
//
// Usage:
//
//	consensus-lint [-v] [-json] [-time] [packages]
//
// Packages are directories or ./... patterns relative to the working
// directory; the default is ./... from the module root. -json writes
// the findings as a stable, position-sorted JSON array on stdout for
// diffing and CI grepping; -time prints per-analyzer wall-clock totals
// on stderr. Exits 1 if any unsuppressed finding remains.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fortyconsensus/internal/det"
	"fortyconsensus/internal/lint/analysis"
	"fortyconsensus/internal/lint/determtaint"
	"fortyconsensus/internal/lint/exhaustive"
	"fortyconsensus/internal/lint/maporder"
	"fortyconsensus/internal/lint/nodeterm"
	"fortyconsensus/internal/lint/quorumlit"
	"fortyconsensus/internal/lint/valueown"
)

// protocolExempt names the harness layer, module-relative. The four
// protocol-contract analyzers skip packages under these prefixes.
var protocolExempt = []string{
	"cmd",
	"examples",
	"internal/lint",
	"internal/runner",
	"internal/simnet",
	"internal/experiments",
	"internal/workload",
	"internal/metrics",
	// The live runtime is the real-time harness around the protocol
	// packages: goroutines, sockets, and wall clocks are its whole job.
	// The hosted modules stay fully checked.
	"internal/live",
	"internal/kvstore",
	"internal/wal",
	"internal/nemesis",
	"internal/explore",
	// Test-support harness: the linearizability checker runs only inside
	// tests, not inside replicated state machines. internal/shard itself
	// stays checked — its Store/Coordinator are protocol code.
	"internal/shard/histcheck",
}

// scopes pairs every analyzer with the package prefixes it skips.
var scopes = []struct {
	analyzer *analysis.Analyzer
	exempt   []string
}{
	{nodeterm.Analyzer, protocolExempt},
	{determtaint.Analyzer, protocolExempt},
	{valueown.Analyzer, protocolExempt},
	{exhaustive.Analyzer, protocolExempt},
	{maporder.Analyzer, nil},
	{quorumlit.Analyzer, []string{"internal/quorum"}},
}

// finding is one diagnostic in the stable machine-readable form the
// -json mode emits.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	verbose := flag.Bool("v", false, "list the packages checked")
	jsonOut := flag.Bool("json", false, "emit findings as a sorted JSON array on stdout")
	timing := flag.Bool("time", false, "print per-analyzer wall-clock totals on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: consensus-lint [-v] [-json] [-time] [packages]\n\n")
		for _, s := range scopes {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", s.analyzer.Name, s.analyzer.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), *verbose, *jsonOut, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-lint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, verbose, jsonOut, timing bool) error {
	moduleDir, modulePath, err := findModule()
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{filepath.Join(moduleDir, "...")}
	}
	dirs, err := expand(patterns)
	if err != nil {
		return err
	}

	// Phase 1: load every target package (plus, via imports, every
	// module-internal dependency) so the whole-program view is
	// complete before any analyzer runs.
	loader := analysis.NewLoader(modulePath, moduleDir)
	loadStart := time.Now()
	type target struct {
		rel string
		pkg *analysis.Package
	}
	var targets []target
	for _, dir := range dirs {
		rel, err := filepath.Rel(moduleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("%s is outside module %s", dir, modulePath)
		}
		rel = filepath.ToSlash(rel)
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + rel
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			return err
		}
		targets = append(targets, target{rel: rel, pkg: pkg})
	}
	loadElapsed := time.Since(loadStart)
	graphStart := time.Now()
	prog := analysis.NewProgram(loader)
	graphElapsed := time.Since(graphStart)

	// Phase 2: run each package's analyzer subset over the shared
	// program.
	perAnalyzer := make(map[string]time.Duration)
	var findings []finding
	for _, t := range targets {
		var analyzers []*analysis.Analyzer
		for _, s := range scopes {
			if !exempt(t.rel, s.exempt) {
				analyzers = append(analyzers, s.analyzer)
			}
		}
		if len(analyzers) == 0 {
			continue
		}
		if verbose {
			names := make([]string, len(analyzers))
			for i, a := range analyzers {
				names[i] = a.Name
			}
			fmt.Fprintf(os.Stderr, "checking %s (%s)\n", t.pkg.Path, strings.Join(names, ","))
		}
		diags, err := analysis.RunProgramTimed(prog, t.pkg,
			func(a *analysis.Analyzer, d time.Duration) { perAnalyzer[a.Name] += d },
			analyzers...)
		if err != nil {
			return err
		}
		for _, d := range diags {
			pos := t.pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if r, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(r, "..") {
				file = filepath.ToSlash(r)
			}
			findings = append(findings, finding{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Category, Message: d.Message,
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if timing {
		fmt.Fprintf(os.Stderr, "load %8.2fs  (type-check module + stdlib from source)\n", loadElapsed.Seconds())
		fmt.Fprintf(os.Stderr, "graph %7.2fs  (call graph over %d packages)\n", graphElapsed.Seconds(), len(prog.Packages()))
		for _, n := range det.SortedKeys(perAnalyzer) {
			fmt.Fprintf(os.Stderr, "%-12s %6.3fs\n", n, perAnalyzer[n].Seconds())
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "consensus-lint: %d finding(s) in %d package(s)\n", len(findings), len(targets))
		os.Exit(1)
	}
	return nil
}

// exempt reports whether module-relative path rel falls under any prefix.
func exempt(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// findModule walks up from the working directory to go.mod and returns
// the module directory and path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gm); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("%s names no module", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expand resolves directory arguments and /... wildcards into the set
// of directories that contain non-test Go sources.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			base = filepath.Dir(strings.TrimSuffix(pat, "..."))
			if base == "" {
				base = "."
			}
		}
		if !recursive {
			if !hasGoSource(base) {
				return nil, fmt.Errorf("%s: no Go source files", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return filepath.SkipDir
			}
			if hasGoSource(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoSource reports whether dir directly contains a non-test Go file.
func hasGoSource(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
