// Command consensus-lint is the repo's determinism-contract
// multichecker (DESIGN.md, "Determinism contract"). It runs three
// analyzers over the protocol and core packages:
//
//	nodeterm   no wall-clock, global randomness, env reads,
//	           goroutines or channels in protocol code
//	maporder   no order-sensitive effects inside range-over-map
//	quorumlit  no hand-rolled quorum arithmetic outside internal/quorum
//
// The harness layer (runner, simnet, experiments, workload, metrics,
// transport, kvstore, wal, cmd, examples and the linter itself) is
// exempt: it legitimately runs goroutines, real sockets and wall-clock
// benchmarks. internal/quorum is additionally exempt from quorumlit —
// it is where the arithmetic is supposed to live.
//
// Findings are suppressed site-by-site with
//
//	//lint:allow <check> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
//
// Usage:
//
//	consensus-lint [-v] [packages]
//
// Packages are directories or ./... patterns relative to the working
// directory; the default is ./... from the module root. Exits 1 if any
// unsuppressed finding remains.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fortyconsensus/internal/lint/analysis"
	"fortyconsensus/internal/lint/maporder"
	"fortyconsensus/internal/lint/nodeterm"
	"fortyconsensus/internal/lint/quorumlit"
)

// exemptPrefixes names the harness layer, module-relative. Packages
// under these prefixes are skipped entirely.
var exemptPrefixes = []string{
	"cmd",
	"examples",
	"internal/lint",
	"internal/runner",
	"internal/simnet",
	"internal/experiments",
	"internal/workload",
	"internal/metrics",
	"internal/transport",
	"internal/kvstore",
	"internal/wal",
	"internal/nemesis",
	"internal/explore",
	// Test-support harness: the linearizability checker runs only inside
	// tests, not inside replicated state machines. internal/shard itself
	// stays checked — its Store/Coordinator are protocol code.
	"internal/shard/histcheck",
}

// quorumlitExempt additionally skips quorumlit where the arithmetic
// belongs.
var quorumlitExempt = []string{"internal/quorum"}

func main() {
	verbose := flag.Bool("v", false, "list the packages checked")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: consensus-lint [-v] [packages]\n\n")
		for _, a := range []*analysis.Analyzer{nodeterm.Analyzer, maporder.Analyzer, quorumlit.Analyzer} {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-lint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, verbose bool) error {
	moduleDir, modulePath, err := findModule()
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{filepath.Join(moduleDir, "...")}
	}
	dirs, err := expand(patterns)
	if err != nil {
		return err
	}
	loader := analysis.NewLoader(modulePath, moduleDir)
	findings := 0
	checked := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(moduleDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("%s is outside module %s", dir, modulePath)
		}
		rel = filepath.ToSlash(rel)
		if exempt(rel, exemptPrefixes) {
			continue
		}
		analyzers := []*analysis.Analyzer{nodeterm.Analyzer, maporder.Analyzer}
		if !exempt(rel, quorumlitExempt) {
			analyzers = append(analyzers, quorumlit.Analyzer)
		}
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + rel
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			return err
		}
		checked++
		if verbose {
			names := make([]string, len(analyzers))
			for i, a := range analyzers {
				names[i] = a.Name
			}
			fmt.Fprintf(os.Stderr, "checking %s (%s)\n", importPath, strings.Join(names, ","))
		}
		diags, err := analysis.Run(pkg, analyzers...)
		if err != nil {
			return err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if r, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(r, "..") {
				file = r
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", file, pos.Line, pos.Column, d.Message, d.Category)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "consensus-lint: %d finding(s) in %d package(s)\n", findings, checked)
		os.Exit(1)
	}
	return nil
}

// exempt reports whether module-relative path rel falls under any prefix.
func exempt(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// findModule walks up from the working directory to go.mod and returns
// the module directory and path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gm); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("%s names no module", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expand resolves directory arguments and /... wildcards into the set
// of directories that contain non-test Go sources.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			base = filepath.Dir(strings.TrimSuffix(pat, "..."))
			if base == "" {
				base = "."
			}
		}
		if !recursive {
			if !hasGoSource(base) {
				return nil, fmt.Errorf("%s: no Go source files", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return filepath.SkipDir
			}
			if hasGoSource(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoSource reports whether dir directly contains a non-test Go file.
func hasGoSource(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
