# Standard-library-only Go module; every target is offline.
GO ?= go

# The packages whose event loops and experiment harness run goroutines;
# test-race covers them specifically so the race detector's cost stays
# proportionate.
RACE_PKGS := ./internal/runner ./internal/simnet ./internal/experiments

.PHONY: all build test test-race bench golden

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test: build
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

# Micro-benchmarks for the simulation hot path (runner event loop,
# SHA256d mining substrate, PoW mining loop).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/runner ./internal/chaincrypto ./internal/pow

# Re-record the experiment golden artifacts after an intentional
# output change. Review the diff before committing.
golden:
	$(GO) test ./internal/experiments -run TestGoldenArtifacts -update -count=1
