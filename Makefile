# Standard-library-only Go module; every target is offline.
GO ?= go

# The packages whose event loops and experiment harness run goroutines;
# test-race covers them specifically so the race detector's cost stays
# proportionate. explore's campaign worker pool and the shard stack it
# drives joined the list when campaigns went parallel; live is the
# real-time runtime (TCP transport, per-module event loops, client).
RACE_PKGS := ./internal/runner ./internal/simnet ./internal/experiments ./internal/explore ./internal/shard/... ./internal/live ./internal/snapshot

# The sharded-KV stack gated explicitly in ci: the cross-shard 2PC
# tests and the explore campaign regression are this repo's tier-1
# atomic-commitment evidence.
SHARD_PKGS := ./internal/shard/... ./internal/explore ./internal/workload

# Everything `make bench` measures: the simulation hot path plus the
# protocol hot paths the allocation discipline tracks (raft append,
# shard 2PC commit, explore episodes and campaign scaling).
BENCH_PKGS := ./internal/runner ./internal/chaincrypto ./internal/pow ./internal/raft ./internal/shard ./internal/explore

.PHONY: all build test test-race bench bench-json golden lint explore ci cover serve-smoke

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Static analysis: go vet plus the repo's own determinism-contract
# multichecker — six analyzers (nodeterm, determtaint, valueown,
# exhaustive, maporder, quorumlit) over every package in the module,
# with per-analyzer wall-clock timing. Zero unsuppressed findings is a
# merge requirement; see DESIGN.md "Determinism contract".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/consensus-lint -time ./...

test: build lint
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

# Bounded deterministic fault campaign: every registered protocol, a
# fixed seed window, the default crash-model fault mix. Episodes fan
# out across GOMAXPROCS workers (-workers 0) with bit-identical
# results, which is what pays for the doubled seed window. Exit 1
# means an invariant was violated and a reproducer was printed. The
# second sweep turns on membership churn (rmnode) against raft-member,
# whose compaction-bound, snapshot-install, and config-safety
# invariants gate every remove → compact → re-add → InstallSnapshot
# pipeline the generator finds.
explore:
	$(GO) run ./cmd/consensus-explore -protocol all -seeds 48 -faults 4 -workers 0
	$(GO) run ./cmd/consensus-explore -protocol raft-member -seeds 24 -faults 3 -workers 0 -classes rmnode,crash,partition

# Full gate: everything CI runs, in order. The golden step verifies the
# pinned experiment artifacts byte-for-byte (no -update), and the shard
# stack runs uncached so the 2PC and linearizability tests always fire.
ci: build lint explore
	$(GO) test -race ./...
	$(GO) test $(SHARD_PKGS) -count=1
	$(GO) test ./internal/experiments -run TestGoldenArtifacts -count=1
	$(MAKE) serve-smoke

# End-to-end smoke over real processes and sockets: build the serve and
# load CLIs, run a 3-node local cluster, push a load burst through the
# client library, kill one node, push another burst, and require clean
# SIGTERM shutdowns plus a nonzero committed-op count throughout.
serve-smoke:
	./scripts/serve_smoke.sh

# Aggregate statement coverage across every package. The baseline at
# the time cover was added is recorded in README.md ("Coverage"); a
# drop below it warrants a look at what stopped being exercised.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./internal/... ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Micro-benchmarks for the simulation and protocol hot paths (runner
# event loop, SHA256d mining substrate, PoW mining loop, raft leader
# append, shard 2PC commit, explore episodes/campaign scaling).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ $(BENCH_PKGS)

# Machine-readable benchmark record: same sweep as `make bench`,
# rendered to BENCH_10.json (ns/op, B/op, allocs/op per benchmark) for
# mechanical before/after comparison across PRs.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ $(BENCH_PKGS) > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_10.json < bench.out
	@rm -f bench.out

# Re-record the experiment golden artifacts after an intentional
# output change. Review the diff before committing.
golden:
	$(GO) test ./internal/experiments -run TestGoldenArtifacts -update -count=1
