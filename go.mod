module fortyconsensus

go 1.22
