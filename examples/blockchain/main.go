// Blockchain: mines a small Proof-of-Work chain — the paper's
// permissionless half. Three miners grind real SHA-256d puzzles, gossip
// blocks, fork and reconverge on the most-work chain, confirm a
// transaction, and the difficulty retargets when hash power shifts.
//
//	go run ./examples/blockchain
package main

import (
	"fmt"

	"fortyconsensus/internal/pow"
	"fortyconsensus/internal/runner"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/types"
)

func main() {
	params := pow.DefaultParams()
	fab := simnet.NewFabric(simnet.Options{MinDelay: 8, MaxDelay: 12, Seed: 21})
	rc := runner.New(runner.Config[pow.Message]{Fabric: fab, Dest: pow.Dest, Src: pow.Src, Kind: pow.Kind})

	peers := []types.NodeID{0, 1, 2}
	miners := make([]*pow.Miner, 3)
	powers := []int{2048, 1024, 512} // miner 0 holds ~58% of hash power
	for i := range miners {
		miners[i] = pow.NewMiner(types.NodeID(i), pow.MinerConfig{
			Params: params, Peers: peers, HashPerTick: powers[i], Seed: uint64(i) * 733,
		})
		rc.Add(types.NodeID(i), miners[i])
	}

	fmt.Println("submitting transaction: \"alice pays bob 10\"")
	miners[2].SubmitTx(pow.Tx("alice pays bob 10"))

	last := uint64(0)
	rc.RunUntil(func() bool {
		if h := miners[0].Chain().Height(); h > last {
			last = h
			id, _, bits := miners[0].Chain().Tip()
			fmt.Printf("  height %3d  tip %v  bits %08x\n", h, id, bits)
		}
		return miners[0].Chain().Height() >= 30
	}, 5_000_000)
	rc.Run(60) // final propagation

	// Find the confirmation depth of the transaction.
	chain := miners[1].Chain()
	for _, id := range chain.BestChain() {
		b, _ := chain.Block(id)
		for _, tx := range b.Txs {
			if string(tx) == "alice pays bob 10" {
				_, tipH, _ := chain.Tip()
				var height uint64
				for h := uint64(0); h <= tipH; h++ {
					if blk, ok := chain.BlockAt(h); ok && blk.Hash() == b.Hash() {
						height = h
					}
				}
				fmt.Printf("\ntransaction confirmed at height %d (%d confirmations)\n",
					height, tipH-height+1)
			}
		}
	}

	fmt.Println("\nfork statistics:")
	for i, m := range miners {
		reorgs, deepest := m.Chain().Reorgs()
		fmt.Printf("  miner-%d: found %2d blocks, saw %d stale, %d reorgs (deepest %d)\n",
			i, m.Mined(), m.Chain().StaleBlocks(), reorgs, deepest)
	}

	shares := miners[0].RewardShare()
	fmt.Println("\nbest-chain reward shares (should track hash power 4:2:1):")
	for i := range miners {
		fmt.Printf("  miner-%d: %d blocks\n", i, shares[i])
	}

	converged := 0
	for _, m := range miners[1:] {
		if pow.CommonPrefix(miners[0].Chain(), m.Chain()) >= int(miners[0].Chain().Height()) {
			converged++
		}
	}
	fmt.Printf("\nchains converged on one best prefix: %d/%d peers agree with miner-0 ✓\n",
		converged, len(miners)-1)
}
