// Quickstart: a replicated key-value store on Multi-Paxos.
//
// Five replicas run in a simulated network; a leader is elected, client
// commands replicate through the consensus log, every replica applies
// them in the same order, and the example prints the replies plus a
// cross-replica consistency audit — the paper's state-machine-replication
// picture, runnable.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fortyconsensus/internal/kvstore"
	"fortyconsensus/internal/multipaxos"
	"fortyconsensus/internal/smr"
	"fortyconsensus/internal/types"
)

func main() {
	// 1. Five replicas (tolerating f=2 crashes), each applying committed
	//    commands to its own kvstore.
	cluster := multipaxos.NewCluster(5, nil, multipaxos.Config{Seed: 42},
		func() smr.StateMachine { return kvstore.New() })

	leader := cluster.WaitLeader(1000)
	if leader == nil {
		log.Fatal("no leader elected")
	}
	fmt.Printf("leader elected: %v\n\n", leader.Leader())

	// 2. A client session issues commands. Request (client, seqno) pairs
	//    make retries idempotent.
	commands := []kvstore.Command{
		kvstore.Put("name", []byte("forty-years-of-consensus")),
		kvstore.Put("venue", []byte("ICDE 2020")),
		kvstore.Incr("reads", 1),
		kvstore.Get("name"),
		kvstore.CAS("venue", []byte("ICDE 2020"), []byte("ICDE '20")),
		kvstore.Get("venue"),
		kvstore.Delete("reads"),
		kvstore.Get("reads"),
	}
	for i, cmd := range commands {
		leader.Submit(smr.EncodeRequest(types.Request{
			Client: 1, SeqNo: uint64(i + 1), Op: cmd.Encode(),
		}))
	}

	// 3. Run the cluster; collect the leader's replies.
	replies := cluster.RunPumped(300)
	fmt.Println("replies (leader replica):")
	for _, r := range replies {
		if r.Node == leader.Leader() {
			fmt.Printf("  #%d -> %q\n", r.SeqNo, r.Result)
		}
	}

	// 4. Audit: every replica applied the identical command sequence.
	if err := smr.CheckPrefixConsistency(cluster.Execs...); err != nil {
		log.Fatalf("CONSISTENCY VIOLATION: %v", err)
	}
	fmt.Printf("\nall %d replicas applied identical logs (%d slots committed) ✓\n",
		len(cluster.Nodes), leader.CommitFrontier())

	// 5. Crash the leader mid-stream and keep going: consensus survives.
	fmt.Println("\ncrashing the leader...")
	cluster.Crash(leader.Leader())
	var next *multipaxos.Node
	cluster.RunUntil(func() bool {
		for _, n := range cluster.Nodes {
			if n.IsLeader() && !cluster.Crashed(n.Leader()) {
				next = n
				return true
			}
		}
		return false
	}, 5000)
	if next == nil {
		log.Fatal("no failover")
	}
	next.Submit(smr.EncodeRequest(types.Request{
		Client: 1, SeqNo: 9, Op: kvstore.Put("after", []byte("failover")).Encode(),
	}))
	cluster.RunPumped(300)
	if err := smr.CheckPrefixConsistency(cluster.Execs...); err != nil {
		log.Fatalf("CONSISTENCY VIOLATION after failover: %v", err)
	}
	fmt.Printf("new leader %v committed slot %d; logs still consistent ✓\n",
		next.Leader(), next.CommitFrontier())
}
