// Bank: Spanner-style distributed transactions — 2PC across
// Raft-replicated shards (the paper's Google Spanner slide: "2PL+2PC"
// over per-shard Paxos replication).
//
// Two shards each replicate account balances over a 3-node Raft group.
// Transfers between accounts on different shards run two-phase commit:
// phase 1 replicates a prepare record (with a balance check) in every
// touched shard's log; phase 2 replicates the commit (or abort). The
// example audits that money is conserved and no account goes negative.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"strconv"

	"fortyconsensus/internal/kvstore"
	"fortyconsensus/internal/raft"
	"fortyconsensus/internal/simnet"
	"fortyconsensus/internal/smr"
	"fortyconsensus/internal/types"
	"fortyconsensus/internal/workload"
)

const (
	shardCount = 2
	accounts   = 8
	initialBal = 1000
)

// shard is one Raft-replicated partition of the bank.
type shard struct {
	cluster *raft.Cluster
	leader  *raft.Node
	seq     uint64
}

// apply replicates one command through the shard's Raft log and returns
// the leader's reply.
func (s *shard) apply(all []*shard, cmd kvstore.Command) types.Value {
	s.seq++
	seq := s.seq
	s.leader.Submit(smr.EncodeRequest(types.Request{Client: 7, SeqNo: seq, Op: cmd.Encode()}))
	for ticks := 0; ticks < 2000; ticks++ {
		var out types.Value
		for _, sh := range all {
			sh.cluster.Step()
			for _, r := range sh.cluster.Pump() {
				if sh == s && r.SeqNo == seq && r.Node == s.leader.Leader() {
					out = r.Result
				}
			}
		}
		if out != nil {
			return out
		}
	}
	log.Fatal("bank: replication stalled")
	return nil
}

func balance(s *shard, all []*shard, account int) int64 {
	v := s.apply(all, kvstore.Get(workload.AccountKey(account)))
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func main() {
	// Build the shards.
	shards := make([]*shard, shardCount)
	for i := range shards {
		c := raft.NewCluster(3, nil, raft.Config{Seed: uint64(i)*311 + 5},
			func() smr.StateMachine { return kvstore.New() })
		lead := c.WaitLeader(1000)
		if lead == nil {
			log.Fatal("no shard leader")
		}
		shards[i] = &shard{cluster: c, leader: lead}
	}
	// Fund the accounts (account a lives on shard a % shardCount).
	for a := 0; a < accounts; a++ {
		s := shards[a%shardCount]
		s.apply(shards, kvstore.Put(workload.AccountKey(a), []byte(strconv.Itoa(initialBal))))
	}
	fmt.Printf("funded %d accounts with %d each across %d Raft shards\n\n", accounts, initialBal, shardCount)

	// Run transfers: 2PC with per-shard Raft-replicated records.
	gen := workload.NewBank(accounts, shardCount, simnet.NewRNG(99))
	committed, aborted := 0, 0
	for txn := 0; txn < 12; txn++ {
		tr := gen.Next()
		from, to := shards[tr.FromShard], shards[tr.ToShard]

		// Phase 1 — prepare: check and reserve funds on the debit shard
		// (a CAS-free check-then-reserve, replicated through Raft).
		bal := balance(from, shards, tr.From)
		voteCommit := bal >= tr.Amount
		from.apply(shards, kvstore.Put(fmt.Sprintf("prep-%d", txn), []byte("reserved")))
		to.apply(shards, kvstore.Put(fmt.Sprintf("prep-%d", txn), []byte("reserved")))

		// Phase 2 — decision, replicated on both shards.
		if voteCommit {
			from.apply(shards, kvstore.Incr(workload.AccountKey(tr.From), -tr.Amount))
			to.apply(shards, kvstore.Incr(workload.AccountKey(tr.To), tr.Amount))
			committed++
			kind := "local "
			if tr.CrossShard {
				kind = "cross-shard"
			}
			fmt.Printf("txn %2d: %s transfer %3d: acct %d → acct %d COMMITTED\n",
				txn, kind, tr.Amount, tr.From, tr.To)
		} else {
			from.apply(shards, kvstore.Put(fmt.Sprintf("abort-%d", txn), []byte("1")))
			to.apply(shards, kvstore.Put(fmt.Sprintf("abort-%d", txn), []byte("1")))
			aborted++
			fmt.Printf("txn %2d: transfer %3d: acct %d → acct %d ABORTED (insufficient funds)\n",
				txn, tr.Amount, tr.From, tr.To)
		}
	}

	// Audit: conservation of money and per-replica consistency.
	total := int64(0)
	for a := 0; a < accounts; a++ {
		b := balance(shards[a%shardCount], shards, a)
		if b < 0 {
			log.Fatalf("account %d went negative: %d", a, b)
		}
		total += b
	}
	fmt.Printf("\ncommitted=%d aborted=%d\n", committed, aborted)
	fmt.Printf("total money = %d (expected %d) %s\n", total, accounts*initialBal,
		check(total == accounts*initialBal))
	for i, s := range shards {
		if err := smr.CheckPrefixConsistency(s.cluster.Execs...); err != nil {
			log.Fatalf("shard %d inconsistent: %v", i, err)
		}
	}
	fmt.Println("every shard's replicas applied identical logs ✓")
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
