// Byzantine: the same replicated KV workload on PBFT with an injected
// byzantine replica — and the contrast the paper draws: a crash-fault
// protocol (Multi-Paxos) run under the same equivocating fault loses
// consistency, while PBFT holds.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"

	"fortyconsensus/internal/chaincrypto"
	"fortyconsensus/internal/kvstore"
	"fortyconsensus/internal/multipaxos"
	"fortyconsensus/internal/pbft"
	"fortyconsensus/internal/smr"
	"fortyconsensus/internal/types"
)

func kvSM() smr.StateMachine { return kvstore.New() }

func req(seq uint64, cmd kvstore.Command) types.Value {
	return smr.EncodeRequest(types.Request{Client: 1, SeqNo: seq, Op: cmd.Encode()})
}

func main() {
	fmt.Println("== PBFT (3f+1 = 4 replicas, f = 1) with a byzantine replica ==")
	pbftDemo()
	fmt.Println()
	fmt.Println("== Multi-Paxos (2f+1 = 3 replicas) under the same equivocation ==")
	paxosDemo()
}

// pbftDemo runs PBFT with replica 3 corrupting every prepare/commit it
// sends. Safety and liveness both hold: quorums of 2f+1 correct replicas
// mask the traitor.
func pbftDemo() {
	c := pbft.NewCluster(1, nil, pbft.Config{}, kvSM)
	evil := chaincrypto.Hash([]byte("evil"))
	c.Intercept(3, func(m pbft.Message) []pbft.Message {
		switch m.Kind {
		case pbft.MsgPrepare, pbft.MsgCommit:
			m.Digest = evil // lie about what was proposed
		}
		return []pbft.Message{m}
	})
	for i := 1; i <= 5; i++ {
		c.Submit(0, req(uint64(i), kvstore.Incr("balance", 100)))
	}
	c.RunPumped(2000)
	if err := smr.CheckPrefixConsistency(c.Execs[0], c.Execs[1], c.Execs[2]); err != nil {
		fmt.Printf("  UNEXPECTED divergence: %v\n", err)
		return
	}
	frontier := c.Replicas[0].ExecutedFrontier()
	fmt.Printf("  correct replicas executed %d/5 commands in identical order ✓\n", frontier)
	store := kvstore.New()
	for _, d := range c.Execs[0].Applied() {
		if r, err := smr.DecodeRequest(d.Val); err == nil {
			store.Apply(r.Op)
		}
	}
	v, _ := store.Get("balance")
	fmt.Printf("  balance = %s (byzantine replica could not corrupt or double-apply) ✓\n", v)
}

// paxosDemo runs Multi-Paxos where replica 2 *equivocates on commit
// messages*, which a crash-fault protocol has no defense against: the
// correct replicas apply divergent values — the safety loss the paper's
// "What if nodes behave maliciously?!" slide motivates.
func paxosDemo() {
	c := multipaxos.NewCluster(3, nil, multipaxos.Config{Seed: 9}, kvSM)
	lead := c.WaitLeader(1000)
	if lead == nil {
		fmt.Println("  no leader")
		return
	}
	// The byzantine node forges Commit messages with altered values —
	// Multi-Paxos replicas trust commits (crash model assumes no lies).
	c.Intercept(lead.Leader(), func(m multipaxos.Message) []multipaxos.Message {
		if m.Kind == multipaxos.MsgCommit && m.To == 1 && m.Val != nil {
			forged := m
			forged.Val = req(99, kvstore.Put("balance", []byte("999999")))
			return []multipaxos.Message{forged}
		}
		return []multipaxos.Message{m}
	})
	lead.Submit(req(1, kvstore.Put("balance", []byte("100"))))

	// Pump decisions; divergence surfaces as an smr panic, which we
	// catch and report as the expected outcome.
	defer func() {
		if r := recover(); r != nil {
			fmt.Printf("  consistency check tripped: %v\n", r)
			fmt.Println("  ⇒ crash-fault consensus is NOT byzantine fault tolerant (as the paper warns)")
		}
	}()
	c.RunPumped(300)
	if err := smr.CheckPrefixConsistency(c.Execs...); err != nil {
		fmt.Printf("  replicas diverged: %v\n", err)
		fmt.Println("  ⇒ crash-fault consensus is NOT byzantine fault tolerant (as the paper warns)")
		return
	}
	fmt.Println("  (this schedule did not trigger divergence; rerun with another seed)")
}
