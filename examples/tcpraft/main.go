// TCP Raft: the same Raft replicas that power the simulations, deployed
// over real localhost TCP sockets — elections, replication, and leader
// failover with actual network I/O and wall-clock timers.
//
//	go run ./examples/tcpraft
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"fortyconsensus/internal/det"
	"fortyconsensus/internal/kvstore"
	"fortyconsensus/internal/raft"
	"fortyconsensus/internal/smr"
	"fortyconsensus/internal/transport"
	"fortyconsensus/internal/types"
)

const n = 3

func main() {
	// Bind ephemeral ports first so every node knows the full roster.
	lns := make([]net.Listener, n)
	addrs := make(map[types.NodeID]string, n)
	peers := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		ln, addr, err := transport.Listen()
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		addrs[types.NodeID(i)] = addr
		peers[i] = types.NodeID(i)
	}
	fmt.Println("cluster addresses:")
	for _, id := range det.SortedKeys(addrs) {
		fmt.Printf("  node %v: %s\n", id, addrs[id])
	}

	nodes := make([]*raft.Node, n)
	servers := make([]*transport.Server[raft.Message], n)
	for i := 0; i < n; i++ {
		nodes[i] = raft.New(types.NodeID(i), raft.Config{Peers: peers, Seed: uint64(i) + 77})
		srv, err := transport.NewServerOn(nodes[i], lns[i], transport.Config[raft.Message]{
			Self: types.NodeID(i), Addrs: addrs, Dest: raft.Dest,
			TickEvery: 3 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		servers[i] = srv
		srv.Serve()
		defer srv.Close()
	}

	leader := waitLeader(servers, nodes, -1)
	fmt.Printf("\nleader elected over TCP: node %d (term %d)\n", leader, nodes[leader].Term())

	// Replicate real commands.
	for i := 1; i <= 5; i++ {
		op := kvstore.Incr("counter", 1)
		req := smr.EncodeRequest(types.Request{Client: 1, SeqNo: uint64(i), Op: op.Encode()})
		servers[leader].Submit(func() { nodes[leader].Submit(req) })
	}
	waitFrontier(servers, nodes, 6, -1) // 5 commands + the term no-op
	fmt.Println("5 commands replicated and committed on all live nodes ✓")

	// Kill the leader's server — a real socket-level crash.
	fmt.Printf("\nkilling leader node %d...\n", leader)
	servers[leader].Close()
	newLeader := waitLeader(servers, nodes, leader)
	fmt.Printf("failover complete: node %d leads (term %d)\n", newLeader, nodes[newLeader].Term())

	req := smr.EncodeRequest(types.Request{Client: 1, SeqNo: 6, Op: kvstore.Incr("counter", 1).Encode()})
	servers[newLeader].Submit(func() { nodes[newLeader].Submit(req) })
	waitFrontier(servers, nodes, 7, leader)
	fmt.Println("post-failover command committed ✓")

	// Apply the committed log and read the counter.
	store := kvstore.New()
	var decisions []types.Decision
	servers[newLeader].Inspect(func() { decisions = nodes[newLeader].TakeDecisions() })
	exec := smr.NewExecutor(types.NodeID(newLeader), store)
	for _, d := range decisions {
		exec.Commit(d)
	}
	v, _ := store.Get("counter")
	fmt.Printf("\nfinal counter value: %s (expected 6) ✓\n", v)
}

func waitLeader(servers []*transport.Server[raft.Message], nodes []*raft.Node, skip int) int {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for i := range servers {
			if i == skip {
				continue
			}
			var lead bool
			servers[i].Inspect(func() { lead = nodes[i].IsLeader() })
			if lead {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("no leader within 15s")
	return -1
}

func waitFrontier(servers []*transport.Server[raft.Message], nodes []*raft.Node, want types.Seq, skip int) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i := range servers {
			if i == skip {
				continue
			}
			var frontier types.Seq
			servers[i].Inspect(func() { frontier = nodes[i].CommitFrontier() })
			if frontier < want {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("replication stalled")
}
