// TCP Raft: the same Raft replicas that power the simulations, deployed
// over real localhost TCP sockets by the internal/live runtime —
// elections, replication, and leader failover with actual network I/O,
// wall-clock timers, and the full client library in between.
//
//	go run ./examples/tcpraft
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"fortyconsensus/internal/det"
	"fortyconsensus/internal/kvstore"
	"fortyconsensus/internal/live"
	"fortyconsensus/internal/types"
)

const n = 3

func main() {
	// Bind ephemeral ports first so every node knows the full roster.
	lns := make([]net.Listener, n)
	addrs := make(map[types.NodeID]string, n)
	addrList := make([]string, n)
	for i := 0; i < n; i++ {
		ln, addr, err := live.Listen()
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		addrs[types.NodeID(i)] = addr
		addrList[i] = addr
	}
	fmt.Println("cluster addresses:")
	for _, id := range det.SortedKeys(addrs) {
		fmt.Printf("  node %v: %s\n", id, addrs[id])
	}

	// One live server per node, each hosting a single raft group.
	servers := make([]*live.Server, n)
	for i := 0; i < n; i++ {
		srv, err := live.NewServerOn(lns[i], live.ServerConfig{
			Self:      types.NodeID(i),
			Addrs:     addrs,
			Shards:    1,
			Backend:   live.BackendRaft,
			TickEvery: 3 * time.Millisecond,
			Seed:      77,
		})
		if err != nil {
			log.Fatal(err)
		}
		servers[i] = srv
		srv.Start()
		defer srv.Close()
	}

	leader := waitLeader(servers, -1)
	fmt.Printf("\nleader elected over TCP: node %d\n", leader)

	// Replicate real commands through the client library: leader
	// discovery, redirects, and retries all exercise the real path.
	cl, err := live.NewClient(live.ClientConfig{Addrs: addrList, Shards: 1, SessionBase: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 5; i++ {
		if _, err := cl.Do(kvstore.Incr("counter", 1)); err != nil {
			log.Fatalf("incr %d: %v", i, err)
		}
	}
	fmt.Println("5 commands replicated and committed ✓")

	// Kill the leader's server — a real socket-level crash.
	fmt.Printf("\nkilling leader node %d...\n", leader)
	servers[leader].Close()
	servers[leader] = nil
	newLeader := waitLeader(servers, leader)
	fmt.Printf("failover complete: node %d leads\n", newLeader)

	if _, err := cl.Do(kvstore.Incr("counter", 1)); err != nil {
		log.Fatalf("post-failover incr: %v", err)
	}
	fmt.Println("post-failover command committed ✓")

	// Read the counter back through consensus.
	v, err := cl.Do(kvstore.Get("counter"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("\nfinal counter value: %s (expected 6) ✓\n", v)
	if string(v) != "6" {
		log.Fatalf("counter = %s, want 6", v)
	}
}

func waitLeader(servers []*live.Server, skip int) int {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for i, srv := range servers {
			if i == skip || srv == nil {
				continue
			}
			if isLead, _, ok := srv.Leader(0); ok && isLead {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("no leader within 15s")
	return -1
}
